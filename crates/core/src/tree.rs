//! Rooted trees with provenance (paper Def. 4.1) and the arena storing
//! them during search.
//!
//! A tree is represented by its **sorted** edge-id array (so an *edge
//! set* — Def. 4.2 — is canonical and hashable), its sorted node array,
//! its root, and its `sat` mask. Sorted arrays make the Merge1 test
//! ("no node in common besides the root") a linear merge-scan, and
//! Grow/Merge produce sorted outputs by sorted insertion/union.

use crate::seedmask::SeedMask;
use crate::seeds::SeedSets;
use cs_graph::{EdgeId, Graph, NodeId};

/// Identifier of a tree within a [`TreeStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeId(pub u32);

impl TreeId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Sentinel id used where no arena exists — the partitioned
    /// parallel engine ([`crate::algo::partition`]) keeps trees in
    /// reference-counted cells instead of a [`TreeStore`], so its
    /// provenance links carry this placeholder.
    pub const NONE: TreeId = TreeId(u32::MAX);
}

/// How a tree was built (Def. 4.1, extended with the MoESP `Mo` form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// A one-node tree on a seed.
    Init(NodeId),
    /// Grown from `tree` with `edge` (rooted at the edge's far end).
    Grow(TreeId, EdgeId),
    /// Merge of two trees sharing exactly their root.
    Merge(TreeId, TreeId),
    /// MoESP copy of `tree`, re-rooted at a seed node (§4.5).
    Mo(TreeId, NodeId),
}

/// A rooted tree under construction.
#[derive(Debug, Clone)]
pub struct TreeData {
    /// The distinguished root (GAM grows only from here).
    pub root: NodeId,
    /// Sorted edge ids — the tree's edge set.
    pub edges: Box<[EdgeId]>,
    /// Sorted node ids.
    pub nodes: Box<[NodeId]>,
    /// Explicit seed sets having a seed in this tree (`sat(t)`).
    pub sat: SeedMask,
    /// True if the provenance includes `Mo` — Grow is disabled (§4.5).
    pub is_mo: bool,
    /// Non-empty iff this tree is an `(root, s)`-rooted path
    /// (Def. 4.4): the mask holds the sets of its unique seed `s`.
    /// Drives the seed-signature updates of LESP (§4.6).
    pub path_from: SeedMask,
    /// How this tree was built.
    pub provenance: Provenance,
}

impl TreeData {
    /// Number of edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// True if `n` occurs in the tree.
    #[inline]
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.binary_search(&n).is_ok()
    }
}

/// Arena of all trees built during one search, plus constructors
/// implementing Init / Grow / Merge / Mo.
#[derive(Debug, Default)]
pub struct TreeStore {
    trees: Vec<TreeData>,
}

impl TreeStore {
    /// Empty store.
    pub fn new() -> Self {
        TreeStore::default()
    }

    /// Number of trees (provenances) stored.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if no trees were built.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Fetches a tree.
    #[inline]
    pub fn get(&self, t: TreeId) -> &TreeData {
        &self.trees[t.index()]
    }

    /// Stores a tree, returning its id.
    pub fn push(&mut self, t: TreeData) -> TreeId {
        let id = TreeId(self.trees.len() as u32);
        self.trees.push(t);
        id
    }

    /// Builds the `Init(n)` tree for a seed `n`.
    pub fn make_init(&self, n: NodeId, seeds: &SeedSets) -> TreeData {
        init_tree(n, seeds)
    }

    /// Builds `Grow(t, e)`: `e` goes between `t.root` and `new_root`
    /// (either direction); the result is rooted at `new_root`.
    ///
    /// The caller must have verified Grow1 (`new_root ∉ t`) and Grow2
    /// (`new_root` is no seed of a set in `sat(t)`); debug assertions
    /// re-check them.
    pub fn make_grow(
        &self,
        t_id: TreeId,
        t: &TreeData,
        e: EdgeId,
        new_root: NodeId,
        seeds: &SeedSets,
    ) -> TreeData {
        grow_tree(t_id, t, e, new_root, seeds)
    }

    /// Builds `Merge(t1, t2)` if the Merge pre-conditions hold:
    /// Merge1 — same root and no other common node; Merge2 — no seed
    /// set covered by both trees, *except* through the shared root
    /// itself.
    ///
    /// The exception is required for merges at seed roots: in the
    /// paper's Figure 3 walkthrough, `A-1-2-B` (rooted at seed B, sat
    /// {S_A, S_B}) merges with `B-3-C` (sat {S_B, S_C}) into the
    /// result. Both trees cover S_B, but only via the root B, so the
    /// merged tree still has exactly one node per set. Since Merge1
    /// makes the root the unique shared node, and every tree holds at
    /// most one seed per set, `sat₁ ∩ sat₂ ⊆ membership(root)` is
    /// exactly the condition under which the union stays minimal.
    pub fn make_merge(
        &self,
        t1_id: TreeId,
        t1: &TreeData,
        t2_id: TreeId,
        t2: &TreeData,
        seeds: &SeedSets,
    ) -> Option<TreeData> {
        merge_trees(t1_id, t1, t2_id, t2, seeds)
    }

    /// Builds `Mo(t, r)`: the same edge/node sets re-rooted at seed `r`.
    pub fn make_mo(&self, t_id: TreeId, t: &TreeData, r: NodeId) -> TreeData {
        mo_tree(t_id, t, r)
    }
}

/// Builds the `Init(n)` tree for a seed `n` — the arena-free
/// constructor behind [`TreeStore::make_init`].
pub fn init_tree(n: NodeId, seeds: &SeedSets) -> TreeData {
    let membership = seeds.membership(n);
    TreeData {
        root: n,
        edges: Box::new([]),
        nodes: Box::new([n]),
        sat: membership,
        is_mo: false,
        path_from: membership,
        provenance: Provenance::Init(n),
    }
}

/// Builds `Grow(t, e)` — the arena-free constructor behind
/// [`TreeStore::make_grow`]. `e` goes between `t.root` and `new_root`
/// (either direction); the result is rooted at `new_root`. The caller
/// must have verified Grow1 (`new_root ∉ t`) and Grow2 (`new_root` is
/// no seed of a set in `sat(t)`); debug assertions re-check them.
/// Engines without a [`TreeStore`] pass [`TreeId::NONE`] for `t_id`.
pub fn grow_tree(
    t_id: TreeId,
    t: &TreeData,
    e: EdgeId,
    new_root: NodeId,
    seeds: &SeedSets,
) -> TreeData {
    debug_assert!(!t.contains_node(new_root), "Grow1 violated");
    let membership = seeds.membership(new_root);
    debug_assert!(membership.disjoint(t.sat), "Grow2 violated");
    debug_assert!(!t.is_mo, "Grow is disabled on Mo trees");
    TreeData {
        root: new_root,
        edges: sorted_insert(&t.edges, e),
        nodes: sorted_insert(&t.nodes, new_root),
        sat: t.sat.union(membership),
        is_mo: false,
        // Still an (n, s)-rooted path iff the parent was one and the
        // new root is not itself a seed.
        path_from: if membership.is_empty() {
            t.path_from
        } else {
            SeedMask::EMPTY
        },
        provenance: Provenance::Grow(t_id, e),
    }
}

/// Builds `Merge(t1, t2)` if the Merge pre-conditions hold — the
/// arena-free constructor behind [`TreeStore::make_merge`]: Merge1 —
/// same root and no other common node; Merge2 — no seed set covered by
/// both trees, *except* through the shared root itself (see
/// [`TreeStore::make_merge`] for why the exception is required).
/// Engines without a [`TreeStore`] pass [`TreeId::NONE`] for the ids.
pub fn merge_trees(
    t1_id: TreeId,
    t1: &TreeData,
    t2_id: TreeId,
    t2: &TreeData,
    seeds: &SeedSets,
) -> Option<TreeData> {
    if t1.root != t2.root {
        return None;
    }
    let overlap = t1.sat.intersect(t2.sat);
    if !seeds.membership(t1.root).superset_of(overlap) {
        return None;
    }
    if !nodes_intersect_only_at(&t1.nodes, &t2.nodes, t1.root) {
        return None;
    }
    Some(TreeData {
        root: t1.root,
        edges: sorted_union(&t1.edges, &t2.edges),
        nodes: sorted_union(&t1.nodes, &t2.nodes),
        sat: t1.sat.union(t2.sat),
        is_mo: t1.is_mo || t2.is_mo,
        path_from: SeedMask::EMPTY,
        provenance: Provenance::Merge(t1_id, t2_id),
    })
}

/// Builds `Mo(t, r)` — the arena-free constructor behind
/// [`TreeStore::make_mo`]: the same edge/node sets re-rooted at seed
/// `r`.
pub fn mo_tree(t_id: TreeId, t: &TreeData, r: NodeId) -> TreeData {
    debug_assert!(t.contains_node(r), "Mo root must be in the tree");
    debug_assert_ne!(t.root, r, "Mo root must differ from the tree root");
    TreeData {
        root: r,
        edges: t.edges.clone(),
        nodes: t.nodes.clone(),
        sat: t.sat,
        is_mo: true,
        path_from: SeedMask::EMPTY,
        provenance: Provenance::Mo(t_id, r),
    }
}

/// Inserts `x` into a sorted slice, returning a new sorted boxed slice.
/// Duplicates are rejected by a debug assertion (trees never repeat an
/// edge or node).
pub fn sorted_insert<T: Ord + Copy>(slice: &[T], x: T) -> Box<[T]> {
    let pos = match slice.binary_search(&x) {
        Ok(_) => {
            debug_assert!(false, "duplicate insertion into tree set");
            return slice.to_vec().into_boxed_slice();
        }
        Err(p) => p,
    };
    let mut v = Vec::with_capacity(slice.len() + 1);
    v.extend_from_slice(&slice[..pos]);
    v.push(x);
    v.extend_from_slice(&slice[pos..]);
    v.into_boxed_slice()
}

/// Union of two sorted slices (assumed internally duplicate-free).
pub fn sorted_union<T: Ord + Copy>(a: &[T], b: &[T]) -> Box<[T]> {
    let mut v = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                v.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                v.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                v.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    v.extend_from_slice(&a[i..]);
    v.extend_from_slice(&b[j..]);
    v.into_boxed_slice()
}

/// True iff the sorted node arrays intersect in exactly `{root}`.
pub fn nodes_intersect_only_at(a: &[NodeId], b: &[NodeId], root: NodeId) -> bool {
    let (mut i, mut j) = (0, 0);
    let mut saw_root = false;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i] != root {
                    return false;
                }
                saw_root = true;
                i += 1;
                j += 1;
            }
        }
    }
    saw_root
}

/// Checks that an edge set actually forms a tree over the graph
/// (connected, acyclic) — used by tests and debug assertions.
pub fn is_tree(g: &Graph, edges: &[EdgeId]) -> bool {
    if edges.is_empty() {
        return true;
    }
    use cs_graph::fxhash::{FxHashMap, FxHashSet};
    let mut adj: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
    for &e in edges {
        let ed = g.edge(e);
        adj.entry(ed.src).or_default().push(ed.dst);
        adj.entry(ed.dst).or_default().push(ed.src);
        nodes.insert(ed.src);
        nodes.insert(ed.dst);
    }
    // A connected graph with |N| = |E| + 1 is a tree.
    if nodes.len() != edges.len() + 1 {
        return false;
    }
    let Some(&start) = nodes.iter().next() else {
        return false; // unreachable: |N| = |E| + 1 > 0 was just checked
    };
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    let mut stack = vec![start];
    seen.insert(start);
    while let Some(n) = stack.pop() {
        for &m in adj.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
            if seen.insert(m) {
                stack.push(m);
            }
        }
    }
    seen.len() == nodes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn sorted_insert_positions() {
        assert_eq!(
            sorted_insert(&[e(1), e(3)], e(2)).as_ref(),
            &[e(1), e(2), e(3)]
        );
        assert_eq!(sorted_insert(&[], e(5)).as_ref(), &[e(5)]);
        assert_eq!(sorted_insert(&[e(1)], e(0)).as_ref(), &[e(0), e(1)]);
    }

    #[test]
    fn sorted_union_merges() {
        let u = sorted_union(&[n(1), n(3)], &[n(2), n(3), n(4)]);
        assert_eq!(u.as_ref(), &[n(1), n(2), n(3), n(4)]);
    }

    #[test]
    fn intersect_only_at_root() {
        assert!(nodes_intersect_only_at(&[n(1), n(2)], &[n(2), n(3)], n(2)));
        assert!(!nodes_intersect_only_at(
            &[n(1), n(2), n(3)],
            &[n(2), n(3)],
            n(2)
        ));
        // Root must actually be shared.
        assert!(!nodes_intersect_only_at(&[n(1)], &[n(3)], n(2)));
    }

    #[test]
    fn init_grow_merge_pipeline() {
        // Path A --e0-- x --e1-- B; seeds {A}, {B}.
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let x = b.add_node("x");
        let bb = b.add_node("B");
        let e0 = b.add_edge(a, "r", x);
        let e1 = b.add_edge(x, "r", bb);
        let g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![bb]]).unwrap();

        let mut store = TreeStore::new();
        let ia = store.make_init(a, &seeds);
        assert_eq!(ia.sat, SeedMask::single(0));
        assert_eq!(ia.path_from, SeedMask::single(0));
        let ia_id = store.push(ia);

        let ib = store.make_init(bb, &seeds);
        let ib_id = store.push(ib);

        // Grow A to x.
        let t_ax = store.make_grow(ia_id, &store.get(ia_id).clone(), e0, x, &seeds);
        assert_eq!(t_ax.root, x);
        assert_eq!(t_ax.path_from, SeedMask::single(0), "still a rooted path");
        let ax_id = store.push(t_ax);

        // Grow B to x.
        let t_bx = store.make_grow(ib_id, &store.get(ib_id).clone(), e1, x, &seeds);
        let bx_id = store.push(t_bx);

        // Merge at x.
        let m = store
            .make_merge(ax_id, store.get(ax_id), bx_id, store.get(bx_id), &seeds)
            .expect("mergeable");
        assert_eq!(m.sat, SeedMask::full(2));
        assert_eq!(m.edges.as_ref(), &[e0, e1]);
        assert!(is_tree(&g, &m.edges));
        assert_eq!(m.path_from, SeedMask::EMPTY);
    }

    #[test]
    fn merge_rejects_shared_interior() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let x = b.add_node("x");
        let c = b.add_node("C");
        let e0 = b.add_edge(a, "r", x);
        let e1 = b.add_edge(x, "r", c);
        let _g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![c]]).unwrap();
        let mut store = TreeStore::new();
        let ia = store.push(store.make_init(a, &seeds));
        let t1 = store.make_grow(ia, &store.get(ia).clone(), e0, x, &seeds);
        let t1_id = store.push(t1);
        let t2 = store.make_grow(t1_id, &store.get(t1_id).clone(), e1, c, &seeds);
        let t2_id = store.push(t2);
        // t2 (rooted c) vs a different-rooted tree: Merge1 fails on root.
        assert!(store
            .make_merge(t2_id, store.get(t2_id), ia, store.get(ia), &seeds)
            .is_none());
        // Same root but overlapping sat: build Init(a) again — sat not
        // disjoint with t1 (both contain set 0).
        let ia2 = store.push(store.make_init(a, &seeds));
        let t1b = store.make_grow(ia2, &store.get(ia2).clone(), e0, x, &seeds);
        let t1b_id = store.push(t1b);
        assert!(store
            .make_merge(t1_id, store.get(t1_id), t1b_id, store.get(t1b_id), &seeds)
            .is_none());
    }

    #[test]
    fn mo_copy_disables_grow() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let c = b.add_node("C");
        b.add_edge(a, "r", c);
        let _g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![c]]).unwrap();
        let mut store = TreeStore::new();
        let ia = store.push(store.make_init(a, &seeds));
        let grown = store.make_grow(ia, &store.get(ia).clone(), e(0), c, &seeds);
        let gid = store.push(grown);
        let mo = store.make_mo(gid, store.get(gid), a);
        assert!(mo.is_mo);
        assert_eq!(mo.root, a);
        assert_eq!(mo.sat, store.get(gid).sat);
    }

    #[test]
    fn grow_breaks_path_on_seed() {
        // A -- B -- extension: growing Init(A) onto seed B ends the
        // rooted-path property.
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let bb = b.add_node("B");
        let c = b.add_node("c");
        b.add_edge(a, "r", bb);
        b.add_edge(bb, "r", c);
        let _g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![bb]]).unwrap();
        let mut store = TreeStore::new();
        let ia = store.push(store.make_init(a, &seeds));
        let t = store.make_grow(ia, &store.get(ia).clone(), e(0), bb, &seeds);
        assert_eq!(t.path_from, SeedMask::EMPTY);
        assert_eq!(t.sat, SeedMask::full(2));
    }

    #[test]
    fn is_tree_detects_cycles() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        let d = b.add_node("d");
        let e0 = b.add_edge(a, "r", c);
        let e1 = b.add_edge(c, "r", d);
        let e2 = b.add_edge(d, "r", a);
        let g = b.freeze();
        assert!(is_tree(&g, &[e0, e1]));
        assert!(!is_tree(&g, &[e0, e1, e2]));
        assert!(is_tree(&g, &[]));
    }
}
