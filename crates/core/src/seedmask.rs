//! Bitmask over seed sets.
//!
//! With `m ≤ 64` seed sets, `sat(t)` (the sets a tree has a seed from,
//! paper Observation 1), node seed signatures `ss_n` (§4.6), and the
//! Merge2 disjointness test all become single-word operations.

use std::fmt;

/// A set of seed-set indices, packed in a `u64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct SeedMask(pub u64);

/// Maximum number of seed sets supported by the mask representation.
pub const MAX_SEED_SETS: usize = 64;

impl SeedMask {
    /// The empty mask.
    pub const EMPTY: SeedMask = SeedMask(0);

    /// A mask with only set `i`.
    ///
    /// # Panics
    /// Panics (debug) if `i >= 64`.
    #[inline]
    pub fn single(i: usize) -> Self {
        debug_assert!(i < MAX_SEED_SETS);
        SeedMask(1u64 << i)
    }

    /// The full mask over `m` sets.
    #[inline]
    pub fn full(m: usize) -> Self {
        debug_assert!(m <= MAX_SEED_SETS);
        if m == MAX_SEED_SETS {
            SeedMask(u64::MAX)
        } else {
            SeedMask((1u64 << m) - 1)
        }
    }

    /// True if no bits are set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if set `i` is present.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1u64 << i) != 0
    }

    /// Union.
    #[inline]
    pub fn union(self, other: SeedMask) -> SeedMask {
        SeedMask(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    pub fn intersect(self, other: SeedMask) -> SeedMask {
        SeedMask(self.0 & other.0)
    }

    /// True if the two masks share no set (Merge2 pre-condition).
    #[inline]
    pub fn disjoint(self, other: SeedMask) -> bool {
        self.0 & other.0 == 0
    }

    /// Number of sets present — the Σ(ss_n) of §4.6.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if `self` contains every set of `other`.
    #[inline]
    pub fn superset_of(self, other: SeedMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Inserts set `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        self.0 |= 1u64 << i;
    }

    /// Iterates over the set indices present.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }
}

impl fmt::Debug for SeedMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "S{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_contains() {
        let m = SeedMask::single(3);
        assert!(m.contains(3));
        assert!(!m.contains(2));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn full_mask() {
        assert_eq!(SeedMask::full(3).0, 0b111);
        assert_eq!(SeedMask::full(64).0, u64::MAX);
        assert_eq!(SeedMask::full(0), SeedMask::EMPTY);
    }

    #[test]
    fn set_ops() {
        let a = SeedMask::single(0).union(SeedMask::single(2));
        let b = SeedMask::single(1);
        assert!(a.disjoint(b));
        assert!(!a.disjoint(SeedMask::single(2)));
        assert_eq!(a.union(b), SeedMask(0b111));
        assert_eq!(a.intersect(SeedMask(0b110)), SeedMask(0b100));
        assert!(SeedMask(0b111).superset_of(a));
        assert!(!a.superset_of(SeedMask(0b111)));
    }

    #[test]
    fn iter_yields_indices() {
        let m = SeedMask(0b1010_0001);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 5, 7]);
    }

    #[test]
    fn debug_format() {
        let m = SeedMask::single(1).union(SeedMask::single(4));
        assert_eq!(format!("{m:?}"), "{S1,S4}");
    }

    #[test]
    fn insert_mutates() {
        let mut m = SeedMask::EMPTY;
        m.insert(5);
        assert!(m.contains(5));
        assert_eq!(m.count(), 1);
    }
}
