//! The partitioned-history parallel GAM engine (paper §6).
//!
//! The paper reports up to ~100× from a multi-threaded GAM that
//! parallelises a *single* connection search. The blocker for a naive
//! port of [`super::gam::GamEngine`] is its global mutable state: the
//! edge-set history `Hist` (Algorithm 1), the `TreesRootedIn` merge
//! index (Algorithm 3), and the seed signatures `ss_n` (§4.6) are all
//! written on every processed tree. This module parallelises the
//! search by **partitioning that state** instead of locking it behind
//! one mutex:
//!
//! * **Hist** is sharded by a stable hash of the tree's edge set; the
//!   `isNew` check plus the history insertion (Algorithm 4 / Algorithm
//!   2 line 2) happen atomically under the owning shard's lock, so two
//!   workers racing on the same edge set serialise exactly there and
//!   nowhere else. Trees with different edge sets never contend.
//! * **TreesRootedIn** is sharded by root node. Registering a tree
//!   snapshots the partners already rooted there under the shard lock;
//!   every unordered pair of same-rooted trees is therefore merge-tested
//!   by whichever tree registered second (the paper's `MergeAll`,
//!   Algorithm 5, with registration order standing in for worklist
//!   order). Trees cross worker boundaries as cheap [`Arc`] snapshots —
//!   [`TreeData`] is immutable once built.
//! * **ss_n** lives in a plain array of atomics: signature updates are
//!   a `fetch_or` (masks only ever grow), LESP's sparing rule reads the
//!   current value.
//! * Each worker owns a **private Grow queue** (same priority/policy
//!   machinery as the sequential engine, §4.9) and a private backlog of
//!   merge/Mo outputs; idle workers **steal** Grow tasks from their
//!   siblings, so an unbalanced expansion — one seed's neighbourhood
//!   exploding while the others are exhausted — still uses every core.
//!
//! Grow tasks are self-contained (`Arc` parent + edge id), which is
//! what makes them stealable: no worker ever needs another worker's
//! arena. Results are deduplicated in one shared [`ResultSet`]
//! (duplicates keep the canonically smallest seed binding, so `N` seed
//! sets report race-independently) and returned in **canonical order**
//! ([`ResultTree::canonical_cmp`]), so a run-to-completion outcome is
//! deterministic regardless of worker count and scheduling — see
//! `partitioned_equivalence.rs` for the equivalence guarantees against
//! the sequential engine. The one scheduling-dependent surface is
//! early termination: `max_results` (`LIMIT k`) stops the search after
//! *any* `k` results, so which `k`-subset is kept depends on the
//! interleaving — exactly as it depends on the queue order
//! sequentially; only the count is guaranteed.
//!
//! The search semantics (ESP/LESP pruning, MoESP re-rooting, the
//! Grow/Merge pre-conditions, every §4.8 filter) are byte-for-byte the
//! sequential rules; only the *interleaving* differs. For
//! configurations whose result set is exploration-order-independent —
//! GAM at any `m`, every variant at `m ≤ 2`, MoLESP at `m ≤ 3`
//! (Properties 1, 3, 8) — the engine is result-identical to the
//! sequential one.

use crate::algo::gam::Queues;
use crate::config::{Filters, QueueOrder, QueuePolicy};
use crate::result::{ResultSet, ResultTree, SearchOutcome, SearchStats};
use crate::seedmask::SeedMask;
use crate::seeds::SeedSets;
use crate::tree::{self, TreeData, TreeId};
use cs_graph::fxhash::{fx_hash_one, FxHashMap, FxHashSet};
use cs_graph::{EdgeId, Graph, LabelId, NodeId};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A stealable Grow task: the parent tree travels as an [`Arc`], so the
/// thief needs no access to the owner's state.
struct GrowTask {
    key: i64,
    seq: u64,
    parent: Arc<TreeData>,
    edge: EdgeId,
}

impl PartialEq for GrowTask {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl Eq for GrowTask {}

impl Ord for GrowTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on key; FIFO (smaller seq first) on ties — the same
        // order as the sequential engine's queue.
        self.key
            .cmp(&other.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for GrowTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A tree awaiting `processTree`, with the one bit of parent context
/// the sequential engine reads from its arena: whether the provenance
/// gained seed sets over its parent(s) (drives Mo injection, §4.5).
struct Candidate {
    td: TreeData,
    seeds_increased: bool,
}

/// One history shard: edge set → roots for which a tree over it exists.
type HistShard = Mutex<FxHashMap<Box<[EdgeId]>, Vec<NodeId>>>;
/// One merge-index shard: root node → trees rooted there.
type RootShard = Mutex<FxHashMap<NodeId, Vec<Arc<TreeData>>>>;

/// The state shared by all workers of one partitioned search.
struct Shared<'g> {
    g: &'g Graph,
    seeds: &'g SeedSets,
    cfg: super::gam::GamConfig,
    filters: Filters,
    label_filter: Option<FxHashSet<LabelId>>,
    order: QueueOrder,
    /// Power-of-two shard-index mask.
    shard_mask: usize,
    /// The partitioned edge-set history (Hist of Algorithm 1).
    hist: Box<[HistShard]>,
    /// The partitioned TreesRootedIn index (Algorithm 3).
    roots: Box<[RootShard]>,
    /// Seed signatures ss_n (§4.6) as atomic masks.
    ss: Box<[AtomicU64]>,
    /// Globally deduplicated results.
    results: Mutex<ResultSet>,
    /// Global provenance count, for the `max_provenances` budget.
    provenances: AtomicU64,
    /// Outstanding work units: queued Grow tasks + backlogged
    /// candidates + tasks currently being processed. Zero ⇔ the search
    /// is exhausted.
    pending: AtomicUsize,
    stop: AtomicBool,
    timed_out: AtomicBool,
    budget_exhausted: AtomicBool,
    cancelled: AtomicBool,
    /// Per-worker Grow queues; a worker pushes only to its own, but
    /// idle workers pop ("steal") from any.
    queues: Box<[Mutex<Queues<GrowTask>>]>,
    deadline: Option<Instant>,
}

impl Shared<'_> {
    fn hist_shard(&self, edges: &[EdgeId]) -> &HistShard {
        &self.hist[fx_hash_one(&edges) as usize & self.shard_mask]
    }

    fn root_shard(&self, n: NodeId) -> &RootShard {
        &self.roots[fx_hash_one(&n) as usize & self.shard_mask]
    }

    fn stopped(&self) -> bool {
        // ORDERING: advisory cooperative-stop flag; a stale read only
        // delays shutdown by one check interval.
        self.stop.load(Ordering::Relaxed)
    }

    /// Algorithm 4 `isNew` against the locked owning shard — identical
    /// to the sequential rule, with `ss` read from the atomics.
    fn is_new_locked(&self, shard: &FxHashMap<Box<[EdgeId]>, Vec<NodeId>>, t: &TreeData) -> bool {
        let Some(roots) = shard.get(t.edges.as_ref()) else {
            return true;
        };
        if self.cfg.esp && !t.edges.is_empty() {
            if self.cfg.lesp {
                // ORDERING: ss is a monotone fetch_or accumulator; a
                // stale read only weakens LESP pruning, never admits a
                // wrong answer (the locked shard check is authoritative).
                let ssr = SeedMask(self.ss[t.root.index()].load(Ordering::Relaxed));
                if ssr.count() >= 3 && self.g.degree(t.root) >= 3 {
                    return !roots.contains(&t.root);
                }
            }
            false
        } else {
            !roots.contains(&t.root)
        }
    }
}

/// Worker-private state: the merge/Mo backlog, local statistics, and
/// the queue tie-break sequence.
struct Worker {
    id: usize,
    backlog: Vec<Candidate>,
    seq: u64,
    tick: u32,
    stats: SearchStats,
}

impl Worker {
    /// Periodic wall-clock check (the sequential engine's cadence).
    fn check_time(&mut self, shared: &Shared<'_>) {
        self.tick = self.tick.wrapping_add(1);
        if !self.tick.is_multiple_of(64) {
            return;
        }
        if let Some(d) = shared.deadline {
            if Instant::now() >= d {
                // ORDERING: both are advisory flags re-read every loop
                // iteration; no other data is published through them.
                shared.timed_out.store(true, Ordering::Relaxed); // ORDERING: see above
                shared.stop.store(true, Ordering::Relaxed); // ORDERING: see above
            }
        }
        if shared.filters.cancel_requested() {
            // ORDERING: advisory flags, same as the deadline stores
            // above: re-read every loop iteration, publish no data.
            shared.cancelled.store(true, Ordering::Relaxed); // ORDERING: see above
            shared.stop.store(true, Ordering::Relaxed); // ORDERING: see above
        }
    }
}

/// Runs a GAM-family search over `workers` intra-search workers with
/// the edge-set history, merge index, and seed signatures partitioned
/// as described in the [module docs](self). `workers <= 1` delegates to
/// the sequential [`super::gam::GamEngine`] (which also preserves the
/// sequential discovery order); `workers == 0` uses the available
/// parallelism. Results are returned in canonical (edge-set) order, so
/// the outcome does not depend on the worker count.
pub fn run_partitioned(
    g: &Graph,
    seeds: &SeedSets,
    cfg: super::gam::GamConfig,
    filters: Filters,
    order: QueueOrder,
    policy: QueuePolicy,
    workers: usize,
) -> SearchOutcome {
    let workers = crate::parallel::resolve_threads(workers);
    if workers <= 1 {
        return super::gam::GamEngine::new(g, seeds, cfg, filters, order, policy).run();
    }

    let start = Instant::now();
    let label_filter = filters.resolve_labels(g);
    let deadline = filters.timeout.map(|t| start + t);
    let shards = (workers * 8).next_power_of_two();
    let ss: Box<[AtomicU64]> = (0..g.node_count()).map(|_| AtomicU64::new(0)).collect();
    for n in seeds.all_seed_nodes() {
        // ORDERING: single-threaded init; thread::scope's spawn edge
        // publishes these stores to every worker.
        ss[n.index()].store(seeds.membership(n).0, Ordering::Relaxed);
    }

    // Distribute the Init trees (Algorithm 1 lines 3–7) round-robin
    // over the workers' backlogs; each counts as one pending unit.
    let init = seeds.all_seed_nodes();
    let mut backlogs: Vec<Vec<Candidate>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, n) in init.iter().enumerate() {
        backlogs[i % workers].push(Candidate {
            td: tree::init_tree(*n, seeds),
            seeds_increased: false,
        });
    }

    let shared = Shared {
        g,
        seeds,
        cfg,
        filters,
        label_filter,
        order,
        shard_mask: shards - 1,
        hist: (0..shards)
            .map(|_| Mutex::new(FxHashMap::default()))
            .collect(),
        roots: (0..shards)
            .map(|_| Mutex::new(FxHashMap::default()))
            .collect(),
        ss,
        results: Mutex::new(ResultSet::new()),
        provenances: AtomicU64::new(0),
        pending: AtomicUsize::new(init.len()),
        stop: AtomicBool::new(false),
        timed_out: AtomicBool::new(false),
        budget_exhausted: AtomicBool::new(false),
        cancelled: AtomicBool::new(false),
        queues: (0..workers)
            .map(|_| Mutex::new(Queues::new(policy)))
            .collect(),
        deadline,
    };

    let mut parts: Vec<SearchStats> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = backlogs
            .into_iter()
            .enumerate()
            .map(|(id, backlog)| {
                let shared = &shared;
                scope.spawn(move || worker_loop(shared, id, backlog))
            })
            .collect();
        for h in handles {
            // cs-lint: allow(L002): a panicking worker is a bug, not a
            // recoverable condition; re-raising it here is the contract.
            parts.push(h.join().expect("search worker panicked"));
        }
    });

    let mut stats = SearchStats::merge_workers(parts);
    // ORDERING: read after scope join; the join edge already ordered
    // every worker's stores before these loads.
    stats.timed_out = shared.timed_out.load(Ordering::Relaxed); // ORDERING: see above
    stats.budget_exhausted = shared.budget_exhausted.load(Ordering::Relaxed); // ORDERING: see above
    stats.cancelled = shared.cancelled.load(Ordering::Relaxed); // ORDERING: see above

    // Canonical result order: deterministic in the worker count and in
    // the scheduling, unlike the nondeterministic global discovery
    // order. (Sequential runs keep their discovery order — canonical
    // ordering is the partitioned engine's contract.)
    // cs-lint: allow(L002): a worker panic has already propagated via
    // join() above, so the results lock cannot be poisoned here.
    let mut results = shared.results.into_inner().expect("results lock poisoned");
    results.sort_canonical();

    SearchOutcome {
        results,
        stats,
        duration: start.elapsed(),
    }
}

/// One worker: drain the private backlog, then the private Grow queue,
/// then steal; exit when the search stops or no work remains anywhere.
fn worker_loop(shared: &Shared<'_>, id: usize, backlog: Vec<Candidate>) -> SearchStats {
    let mut w = Worker {
        id,
        backlog,
        seq: 0,
        tick: 0,
        stats: SearchStats::default(),
    };
    let n = shared.queues.len();
    // Idle backoff: a worker that finds no work anywhere yields a few
    // times, then sleeps in growing steps — a hot spinner would steal
    // CPU from, and contend on the queue locks of, the workers that
    // still have work (pathological on few-core hosts).
    let mut idle_rounds = 0u32;
    loop {
        if shared.stopped() {
            break;
        }
        if let Some(c) = w.backlog.pop() {
            process_candidate(shared, &mut w, c);
            // ORDERING: `pending` is the distributed-termination
            // counter; SeqCst puts every increment/decrement and the
            // idle workers' zero check in one total order, so no
            // worker can exit while unobserved work is still pending.
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            idle_rounds = 0;
            continue;
        }
        // Own queue first (plain lock: it is ours), then the siblings'
        // via `try_lock` (round-robin from the next id, so thieves
        // spread instead of converging on worker 0; a busy or
        // contended victim is simply skipped this round).
        let mut task = None;
        {
            // cs-lint: allow(L002): queue critical sections cannot
            // panic; if one somehow does, aborting the search is right.
            let mut own = shared.queues[id].lock().expect("queue lock poisoned");
            if own.len() > 0 {
                task = own.pop();
            }
        }
        if task.is_none() {
            for k in 1..n {
                let victim = (id + k) % n;
                let batch = match shared.queues[victim].try_lock() {
                    Ok(mut q) if q.len() > 0 => q.steal_half(),
                    _ => continue,
                };
                if batch.is_empty() {
                    continue;
                }
                // Keep the first task, requeue the rest locally: one
                // steal re-balances a whole batch.
                w.stats.stolen += batch.len() as u64;
                let mut it = batch.into_iter();
                task = it.next();
                // cs-lint: allow(L002): queue critical sections cannot
                // panic; aborting the search on poison is right.
                let mut own = shared.queues[id].lock().expect("queue lock poisoned");
                for t in it {
                    let mask = t.parent.sat;
                    own.push(mask, t);
                }
                break;
            }
        }
        match task {
            Some(t) => {
                handle_grow(shared, &mut w, t);
                // ORDERING: termination counter, see the backlog arm.
                shared.pending.fetch_sub(1, Ordering::SeqCst);
                idle_rounds = 0;
            }
            None => {
                // ORDERING: the termination check; SeqCst keeps it in
                // the same total order as the counter updates above.
                if shared.pending.load(Ordering::SeqCst) == 0 {
                    break;
                }
                idle_rounds = idle_rounds.saturating_add(1);
                if idle_rounds <= 8 {
                    std::thread::yield_now();
                } else {
                    let us = 10u64 << (idle_rounds - 9).min(6); // 10µs … 640µs
                    std::thread::sleep(std::time::Duration::from_micros(us));
                }
            }
        }
    }
    w.stats
}

/// A popped Grow task (Algorithm 1 lines 8–11): build the grown tree,
/// update the seed signature of its root, and process it.
fn handle_grow(shared: &Shared<'_>, w: &mut Worker, t: GrowTask) {
    w.check_time(shared);
    if shared.stopped() {
        return;
    }
    let new_root = shared.g.other_endpoint(t.edge, t.parent.root);
    let grown = tree::grow_tree(TreeId::NONE, &t.parent, t.edge, new_root, shared.seeds);
    w.stats.grows += 1;
    if !grown.path_from.is_empty() {
        // ORDERING: monotone accumulator read only by the advisory
        // LESP heuristic; lagging readers just prune less.
        shared.ss[grown.root.index()].fetch_or(grown.path_from.0, Ordering::Relaxed);
    }
    let seeds_increased = grown.sat != t.parent.sat;
    process_candidate(
        shared,
        w,
        Candidate {
            td: grown,
            seeds_increased,
        },
    );
}

/// Algorithm 2 `processTree` against the partitioned state: atomic
/// history check + registration on the owning Hist shard, result
/// reporting into the shared set, merge snapshot on the root shard, Mo
/// injection, Grow queueing on the worker's own queue.
fn process_candidate(shared: &Shared<'_>, w: &mut Worker, c: Candidate) {
    if shared.stopped() {
        return;
    }
    w.check_time(shared);
    {
        let mut h = shared
            .hist_shard(&c.td.edges)
            .lock()
            // cs-lint: allow(L002): shard critical sections cannot
            // panic; aborting the search on poison is right.
            .expect("hist shard poisoned");
        if !shared.is_new_locked(&h, &c.td) {
            w.stats.pruned += 1;
            return;
        }
        h.entry(c.td.edges.clone()).or_default().push(c.td.root);
    }
    w.stats.provenances += 1;
    // ORDERING: pure event counter; the RMW itself is atomic, and the
    // budget check only needs each increment observed exactly once.
    let total = shared.provenances.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(maxp) = shared.filters.max_provenances {
        if total >= maxp {
            // ORDERING: advisory flags re-read every loop iteration.
            shared.budget_exhausted.store(true, Ordering::Relaxed); // ORDERING: see above
            shared.stop.store(true, Ordering::Relaxed); // ORDERING: see above
        }
    }

    let sat_total = c.td.sat.union(shared.seeds.presatisfied());
    let is_result = sat_total == shared.seeds.full();
    let root = c.td.root;
    if is_result {
        let r = ResultTree::from_tree(c.td.edges.clone(), c.td.nodes.clone(), root, shared.seeds);
        debug_assert!(
            crate::result::check_result_minimal(shared.g, &r, shared.seeds).is_ok(),
            "partitioned GAM produced a non-minimal result (Property 2 violated)"
        );
        // cs-lint: allow(L002): result-set critical sections cannot
        // panic; aborting the search on poison is right.
        let mut res = shared.results.lock().expect("results lock poisoned");
        // Never exceed `LIMIT k`: a sibling may have filled the set
        // between our stop-flag check and this insertion. `insert_min`
        // keeps the canonically smallest duplicate, so with an `N` seed
        // set the reported binding does not depend on which worker's
        // root variant won the race.
        if shared.filters.max_results.is_none_or(|k| res.len() < k) {
            res.insert_min(r);
            if let Some(k) = shared.filters.max_results {
                if res.len() >= k {
                    // ORDERING: advisory stop flag; the results lock
                    // above already serialized the k-th insertion.
                    shared.stop.store(true, Ordering::Relaxed);
                }
            }
        }
        drop(res);
        // With explicit seed sets only, a result is terminal (its `sat`
        // overlaps every candidate partner); with an `N` seed set
        // (§4.9) every supertree is a further result, so it stays
        // active.
        if shared.seeds.presatisfied().is_empty() {
            return;
        }
    }

    let arc = Arc::new(c.td);
    register_and_merge(shared, w, &arc);

    // MoESP injection (Algorithm 3 lines 2–5, restricted per §4.5 to
    // provenances that gained seeds; disabled under UNI).
    if shared.cfg.mo && c.seeds_increased && !shared.filters.uni {
        inject_mo(shared, w, &arc);
    }

    // Queue Grow opportunities (Algorithm 2 lines 8–14); Grow is
    // disabled on Mo trees.
    if !arc.is_mo {
        queue_grows(shared, w, &arc);
    }
}

/// recordForMerging (Algorithm 3 line 1) + `MergeAll` (Algorithm 5):
/// scan the partners already registered on `t.root`'s shard, backlog
/// every admissible merge, then register `t` — all under one shard
/// lock, so each unordered pair of same-rooted trees is tested by
/// whichever tree registered second. Scanning in place (instead of
/// snapshotting the partner list) matters: partner lists grow with the
/// search, and per-partner `Arc` refcount traffic would make the
/// quadratic MergeAll scan quadratically *expensive*, not just
/// quadratically long. No other lock is taken inside the scan (merge
/// outputs go to the worker-private backlog), so lock ordering is
/// trivially safe.
fn register_and_merge(shared: &Shared<'_>, w: &mut Worker, t: &Arc<TreeData>) {
    let mut shard = shared
        .root_shard(t.root)
        .lock()
        // cs-lint: allow(L002): shard critical sections cannot panic;
        // aborting the search on poison is right.
        .expect("root shard poisoned");
    let v = shard.entry(t.root).or_default();
    for p in v.iter() {
        if shared.stopped() {
            break;
        }
        if let Some(maxe) = shared.filters.max_edges {
            if t.size() + p.size() > maxe {
                continue;
            }
        }
        if let Some(m) = tree::merge_trees(TreeId::NONE, t, TreeId::NONE, p, shared.seeds) {
            w.stats.merges += 1;
            w.backlog.push(Candidate {
                td: m,
                seeds_increased: true,
            });
            // ORDERING: termination counter, see worker_loop.
            shared.pending.fetch_add(1, Ordering::SeqCst);
        }
    }
    v.push(t.clone());
}

/// Creates the MoESP copies of `orig`, re-rooted at each of its seed
/// nodes other than its root. Mo bypasses edge-set pruning by design;
/// the per-root duplicate check and the history registration happen
/// atomically on the owning Hist shard. Mo trees never grow and are
/// never results themselves — they only feed the merge index.
fn inject_mo(shared: &Shared<'_>, w: &mut Worker, orig: &Arc<TreeData>) {
    let mo_roots: Vec<NodeId> = orig
        .nodes
        .iter()
        .copied()
        .filter(|&n| n != orig.root && shared.seeds.is_seed(n))
        .collect();
    for r in mo_roots {
        if shared.stopped() {
            return;
        }
        let admitted = {
            let mut h = shared
                .hist_shard(&orig.edges)
                .lock()
                // cs-lint: allow(L002): shard critical sections cannot
                // panic; aborting the search on poison is right.
                .expect("hist shard poisoned");
            let roots = h.entry(orig.edges.clone()).or_default();
            if roots.contains(&r) {
                false
            } else {
                roots.push(r);
                true
            }
        };
        if !admitted {
            continue;
        }
        let mo = Arc::new(tree::mo_tree(TreeId::NONE, orig, r));
        w.stats.mo_copies += 1;
        w.stats.provenances += 1;
        // ORDERING: pure event counter, see process_candidate.
        shared.provenances.fetch_add(1, Ordering::Relaxed);
        register_and_merge(shared, w, &mo);
    }
}

/// Pushes every admissible (tree, edge) Grow pair onto the worker's own
/// queue — the same Grow1/Grow2/UNI/LABEL/MAX admission rules as the
/// sequential engine.
fn queue_grows(shared: &Shared<'_>, w: &mut Worker, t: &Arc<TreeData>) {
    let mut pushes: Vec<(SeedMask, GrowTask)> = Vec::new();
    for a in shared.g.adjacent(t.root) {
        // UNI (§4.8): grow only along edges entering the current root.
        if shared.filters.uni && a.outgoing() {
            continue;
        }
        if let Some(lf) = &shared.label_filter {
            if !lf.contains(&shared.g.edge(a.edge()).label) {
                continue;
            }
        }
        // Grow1: no repeated node (also rejects self-loops).
        if t.contains_node(a.other()) {
            continue;
        }
        // Grow2: the new node is no seed of an already-covered set.
        if !shared.seeds.membership(a.other()).disjoint(t.sat) {
            continue;
        }
        // MAX n (§4.8).
        if let Some(maxe) = shared.filters.max_edges {
            if t.size() + 1 > maxe {
                continue;
            }
        }
        let key = shared.order.priority(shared.g, t, a.edge());
        pushes.push((
            t.sat,
            GrowTask {
                key,
                seq: 0, // assigned below
                parent: t.clone(),
                edge: a.edge(),
            },
        ));
    }
    if pushes.is_empty() {
        return;
    }
    w.stats.queue_pushes += pushes.len() as u64;
    // ORDERING: termination counter, see worker_loop; incremented
    // before the tasks become stealable so the count never under-reads.
    shared.pending.fetch_add(pushes.len(), Ordering::SeqCst);
    // cs-lint: allow(L002): queue critical sections cannot panic;
    // aborting the search on poison is right.
    let mut q = shared.queues[w.id].lock().expect("queue lock poisoned");
    for (mask, mut task) in pushes {
        task.seq = w.seq;
        w.seq += 1;
        q.push(mask, task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::gam::{run_gam_family, GamConfig};
    use cs_graph::generate::{chain, line, star};

    fn seq(w: &cs_graph::generate::Workload, cfg: GamConfig) -> SearchOutcome {
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        run_gam_family(
            &w.graph,
            &seeds,
            cfg,
            Filters::none(),
            QueueOrder::SmallestFirst,
        )
    }

    fn par(w: &cs_graph::generate::Workload, cfg: GamConfig, workers: usize) -> SearchOutcome {
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        run_partitioned(
            &w.graph,
            &seeds,
            cfg,
            Filters::none(),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
            workers,
        )
    }

    /// Equivalence holds wherever the configuration's result set is
    /// exploration-order-independent, i.e. where it is complete
    /// (Properties 1, 3, 8): GAM at any `m`, every variant at `m ≤ 2`,
    /// MoLESP at `m ≤ 3`. (An *incomplete* configuration — e.g. MoESP
    /// at `m = 4` — legitimately finds different subsets under
    /// different interleavings, exactly like the sequential engine
    /// under different queue orders; see Figures 5/6.)
    #[test]
    fn partitioned_matches_sequential_on_families() {
        for w in [line(3, 2), star(4, 2), chain(6), line(2, 5)] {
            let s = seq(&w, GamConfig::GAM);
            let p = par(&w, GamConfig::GAM, 4);
            assert_eq!(s.results.canonical(), p.results.canonical(), "GAM diverged");
        }
        for w in [line(3, 2), star(3, 2), chain(6)] {
            let s = seq(&w, GamConfig::MOLESP);
            let p = par(&w, GamConfig::MOLESP, 4);
            assert_eq!(
                s.results.canonical(),
                p.results.canonical(),
                "MoLESP diverged"
            );
        }
        for cfg in [
            GamConfig::ESP,
            GamConfig::MOESP,
            GamConfig::LESP,
            GamConfig::MOLESP,
        ] {
            let w = chain(5);
            let s = seq(&w, cfg);
            let p = par(&w, cfg, 4);
            assert_eq!(
                s.results.canonical(),
                p.results.canonical(),
                "{cfg:?} diverged at m = 2"
            );
        }
    }

    #[test]
    fn canonical_order_is_worker_count_invariant() {
        let w = chain(7); // 128 results
        let runs: Vec<Vec<Vec<EdgeId>>> = [2, 3, 4, 8]
            .iter()
            .map(|&k| {
                par(&w, GamConfig::MOLESP, k)
                    .results
                    .trees()
                    .iter()
                    .map(|t| t.edges.to_vec())
                    .collect()
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(&runs[0], r, "result order depends on worker count");
        }
        // And the order is sorted — the canonical contract.
        let mut sorted = runs[0].clone();
        sorted.sort();
        assert_eq!(runs[0], sorted);
    }

    #[test]
    fn worker_counters_sum_to_aggregates() {
        let w = chain(6);
        let out = par(&w, GamConfig::MOLESP, 4);
        assert_eq!(out.stats.workers.len(), 4);
        assert_eq!(
            out.stats.workers.iter().map(|x| x.produced).sum::<u64>(),
            out.stats.provenances
        );
        assert_eq!(
            out.stats.workers.iter().map(|x| x.pruned).sum::<u64>(),
            out.stats.pruned
        );
        assert_eq!(
            out.stats.workers.iter().map(|x| x.stolen).sum::<u64>(),
            out.stats.stolen
        );
    }

    #[test]
    fn single_worker_delegates_to_sequential() {
        let w = line(3, 2);
        let p = par(&w, GamConfig::MOLESP, 1);
        assert!(p.stats.workers.is_empty(), "sequential path: no workers");
        assert_eq!(
            p.results.canonical(),
            seq(&w, GamConfig::MOLESP).results.canonical()
        );
    }

    #[test]
    fn result_limit_respected() {
        let w = chain(8); // 256 results
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = run_partitioned(
            &w.graph,
            &seeds,
            GamConfig::MOLESP,
            Filters::none().with_max_results(5),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
            4,
        );
        assert_eq!(out.results.len(), 5);
    }

    #[test]
    fn provenance_budget_stops() {
        let w = chain(10);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = run_partitioned(
            &w.graph,
            &seeds,
            GamConfig::GAM,
            Filters::none().with_max_provenances(50),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
            4,
        );
        assert!(out.stats.budget_exhausted);
    }

    #[test]
    fn pre_raised_cancel_stops_partitioned_search() {
        let w = chain(10);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let flag = crate::CancelFlag::new();
        flag.cancel();
        let out = run_partitioned(
            &w.graph,
            &seeds,
            GamConfig::GAM,
            Filters::none().with_cancel(flag),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
            4,
        );
        assert!(out.stats.cancelled, "cancel flag must stop the workers");
        assert!(!out.stats.timed_out, "cancellation is not a timeout");
        // A full chain(10) run yields 1024 results; a cancel observed on
        // the first 64-tick check leaves the search far from complete.
        assert!(out.results.len() < 1024);
    }

    #[test]
    fn pre_raised_cancel_stops_sequential_search() {
        let w = chain(10);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let flag = crate::CancelFlag::new();
        flag.cancel();
        let out = run_partitioned(
            &w.graph,
            &seeds,
            GamConfig::GAM,
            Filters::none().with_cancel(flag),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
            1, // delegates to the sequential GamEngine
        );
        assert!(out.stats.cancelled);
        assert!(out.results.len() < 1024);
    }

    #[test]
    fn filters_apply_in_parallel() {
        let w = chain(4);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = run_partitioned(
            &w.graph,
            &seeds,
            GamConfig::MOLESP,
            Filters::none().with_max_edges(3),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
            3,
        );
        assert_eq!(out.results.len(), 0, "MAX 3 excludes the 4-edge results");
        let out = run_partitioned(
            &w.graph,
            &seeds,
            GamConfig::MOLESP,
            Filters::none().with_labels(["a"]),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
            3,
        );
        assert_eq!(out.results.len(), 1, "label filter leaves one result");
    }

    /// With an `N` seed set the reported binding for the `All`
    /// position is the discovering tree's root — under GAM the same
    /// edge set is admitted for several roots, so without the
    /// min-seeds dedup the kept binding would be a race. The full
    /// result tuples (edges *and* seeds) must be worker-count- and
    /// scheduling-independent.
    #[test]
    fn n_seed_set_bindings_are_deterministic() {
        use crate::seeds::SeedSpec;
        let g = cs_graph::figure1();
        let runs: Vec<Vec<(Vec<EdgeId>, Vec<NodeId>)>> = [2usize, 3, 4, 2, 3, 4]
            .iter()
            .map(|&k| {
                let seeds =
                    SeedSets::new(vec![SeedSpec::Set(vec![NodeId(2)]), SeedSpec::All]).unwrap();
                run_partitioned(
                    &g,
                    &seeds,
                    super::super::gam::GamConfig::GAM,
                    Filters::none().with_max_edges(2),
                    QueueOrder::SmallestFirst,
                    QueuePolicy::Balanced,
                    k,
                )
                .results
                .trees()
                .iter()
                .map(|t| (t.edges.to_vec(), t.seeds.to_vec()))
                .collect()
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(&runs[0], r, "N-set binding depends on scheduling");
        }
    }

    #[test]
    fn balanced_policy_works_partitioned() {
        let w = line(3, 3);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = run_partitioned(
            &w.graph,
            &seeds,
            GamConfig::MOLESP,
            Filters::none(),
            QueueOrder::SmallestFirst,
            QueuePolicy::Balanced,
            4,
        );
        assert_eq!(out.results.len(), 1);
    }
}
