//! The CTP evaluation algorithms (paper §4) behind one entry point.

pub mod bft;
pub mod gam;
pub mod partition;

pub use bft::{minimize, run_bft, BftMerge};
pub use gam::{run_gam_family, CtpStream, GamConfig, GamEngine};
pub use partition::run_partitioned;

use crate::config::{Filters, QueueOrder, QueuePolicy};
use crate::result::SearchOutcome;
use crate::seeds::SeedSets;
use cs_graph::Graph;

/// Every CTP evaluation algorithm studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Simple breadth-first search over trees (§4.1).
    Bft,
    /// BFT with single-pass Merge (§4.3).
    BftM,
    /// BFT with aggressive Merge (§4.3).
    BftAm,
    /// Grow and Aggressive Merge (§4.2).
    Gam,
    /// GAM + edge-set pruning (§4.4).
    Esp,
    /// Merge-oriented ESP (§4.5).
    MoEsp,
    /// Limited edge-set pruning (§4.6).
    Lesp,
    /// The headline algorithm (§4.7): complete for m ≤ 3.
    MoLesp,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Bft,
        Algorithm::BftM,
        Algorithm::BftAm,
        Algorithm::Gam,
        Algorithm::Esp,
        Algorithm::MoEsp,
        Algorithm::Lesp,
        Algorithm::MoLesp,
    ];

    /// The GAM-family variants compared in Figure 11.
    pub const GAM_FAMILY: [Algorithm; 5] = [
        Algorithm::Gam,
        Algorithm::Esp,
        Algorithm::MoEsp,
        Algorithm::Lesp,
        Algorithm::MoLesp,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Bft => "BFT",
            Algorithm::BftM => "BFT-M",
            Algorithm::BftAm => "BFT-AM",
            Algorithm::Gam => "GAM",
            Algorithm::Esp => "ESP",
            Algorithm::MoEsp => "MoESP",
            Algorithm::Lesp => "LESP",
            Algorithm::MoLesp => "MoLESP",
        }
    }

    /// True for the algorithms with unconditional completeness
    /// guarantees for arbitrary m (given enough time and memory).
    pub fn complete_for_any_m(self) -> bool {
        matches!(
            self,
            Algorithm::Bft | Algorithm::BftM | Algorithm::BftAm | Algorithm::Gam
        )
    }

    /// True if the algorithm is complete for CTPs with `m` seed sets
    /// under any execution order (Properties 1, 3, 8).
    pub fn complete_for(self, m: usize) -> bool {
        match self {
            _ if self.complete_for_any_m() => true,
            Algorithm::Esp => m <= 2,
            Algorithm::MoEsp => m <= 2, // all 2ps results; complete iff m ≤ 2
            Algorithm::Lesp => m <= 2,
            Algorithm::MoLesp => m <= 3,
            _ => unreachable!(),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "bft" => Ok(Algorithm::Bft),
            "bft-m" | "bftm" => Ok(Algorithm::BftM),
            "bft-am" | "bftam" => Ok(Algorithm::BftAm),
            "gam" => Ok(Algorithm::Gam),
            "esp" => Ok(Algorithm::Esp),
            "moesp" => Ok(Algorithm::MoEsp),
            "lesp" => Ok(Algorithm::Lesp),
            "molesp" => Ok(Algorithm::MoLesp),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// Evaluates a CTP with the chosen algorithm: computes the set-based
/// result `g(S_1, …, S_m, F)` of paper Def. 2.8 with the filters pushed
/// into the search (§4.8).
pub fn evaluate_ctp(
    g: &Graph,
    seeds: &SeedSets,
    algo: Algorithm,
    filters: Filters,
    order: QueueOrder,
) -> SearchOutcome {
    evaluate_ctp_with_policy(g, seeds, algo, filters, order, QueuePolicy::Single)
}

/// [`evaluate_ctp_with_policy`] with intra-search parallelism (§6):
/// GAM-family searches with `workers > 1` run on the partitioned-
/// history engine ([`partition::run_partitioned`]) — the edge-set
/// history sharded by edge set, per-worker Grow queues with
/// work-stealing, results in canonical (worker-count-independent)
/// order. `workers == 0` uses the available parallelism; `workers <= 1`
/// and the BFT reference algorithms evaluate sequentially, preserving
/// their discovery order.
pub fn evaluate_ctp_partitioned(
    g: &Graph,
    seeds: &SeedSets,
    algo: Algorithm,
    filters: Filters,
    order: QueueOrder,
    policy: QueuePolicy,
    workers: usize,
) -> SearchOutcome {
    match algo {
        Algorithm::Bft | Algorithm::BftM | Algorithm::BftAm => {
            evaluate_ctp_with_policy(g, seeds, algo, filters, order, policy)
        }
        _ => {
            partition::run_partitioned(g, seeds, gam_config(algo), filters, order, policy, workers)
        }
    }
}

/// [`evaluate_ctp`] with an explicit queue policy (§4.9; the GAM family
/// only — BFT has no priority queue).
pub fn evaluate_ctp_with_policy(
    g: &Graph,
    seeds: &SeedSets,
    algo: Algorithm,
    filters: Filters,
    order: QueueOrder,
    policy: QueuePolicy,
) -> SearchOutcome {
    match algo {
        Algorithm::Bft => run_bft(g, seeds, BftMerge::None, filters, order),
        Algorithm::BftM => run_bft(g, seeds, BftMerge::Single, filters, order),
        Algorithm::BftAm => run_bft(g, seeds, BftMerge::Aggressive, filters, order),
        Algorithm::Gam => GamEngine::new(g, seeds, GamConfig::GAM, filters, order, policy).run(),
        Algorithm::Esp => GamEngine::new(g, seeds, GamConfig::ESP, filters, order, policy).run(),
        Algorithm::MoEsp => {
            GamEngine::new(g, seeds, GamConfig::MOESP, filters, order, policy).run()
        }
        Algorithm::Lesp => GamEngine::new(g, seeds, GamConfig::LESP, filters, order, policy).run(),
        Algorithm::MoLesp => {
            GamEngine::new(g, seeds, GamConfig::MOLESP, filters, order, policy).run()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::generate::line;

    #[test]
    fn names_and_parse_roundtrip() {
        for a in Algorithm::ALL {
            let parsed: Algorithm = a.name().parse().unwrap();
            assert_eq!(parsed, a);
        }
        assert!("nope".parse::<Algorithm>().is_err());
        assert_eq!(Algorithm::MoLesp.to_string(), "MoLESP");
    }

    #[test]
    fn completeness_matrix() {
        assert!(Algorithm::Gam.complete_for(10));
        assert!(Algorithm::Esp.complete_for(2));
        assert!(!Algorithm::Esp.complete_for(3));
        assert!(Algorithm::MoLesp.complete_for(3));
        assert!(!Algorithm::MoLesp.complete_for(4));
    }

    #[test]
    fn all_algorithms_agree_on_small_line() {
        let w = line(3, 1);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let reference = evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::Bft,
            Filters::none(),
            QueueOrder::SmallestFirst,
        )
        .results
        .canonical();
        for a in Algorithm::ALL {
            let out = evaluate_ctp(
                &w.graph,
                &seeds,
                a,
                Filters::none(),
                QueueOrder::SmallestFirst,
            );
            // Line results are 2ps: all algorithms with Mo find them;
            // plain ESP/LESP may prune (the paper's Fig. 11 shows their
            // curves missing on Line) — so only check the complete ones
            // plus MoESP/MoLESP here.
            if !matches!(a, Algorithm::Esp | Algorithm::Lesp) {
                assert_eq!(out.results.canonical(), reference, "{a}");
            }
        }
    }
}

/// Evaluates a GAM-family CTP search, streaming each result to
/// `on_result` as it is discovered; the callback returns `false` to
/// stop early. (The BFT variants are batch-only reference algorithms.)
///
/// # Panics
/// Panics if `algo` is a BFT variant.
pub fn evaluate_ctp_streaming<'g>(
    g: &'g Graph,
    seeds: &'g SeedSets,
    algo: Algorithm,
    filters: Filters,
    order: QueueOrder,
    on_result: impl FnMut(&crate::result::ResultTree) -> bool + 'g,
) -> SearchOutcome {
    let cfg = gam_config(algo);
    GamEngine::new(g, seeds, cfg, filters, order, QueuePolicy::Single).run_streaming(on_result)
}

/// The [`GamConfig`] of a GAM-family algorithm.
///
/// # Panics
/// Panics on the BFT variants (batch-only reference algorithms).
fn gam_config(algo: Algorithm) -> GamConfig {
    match algo {
        Algorithm::Gam => GamConfig::GAM,
        Algorithm::Esp => GamConfig::ESP,
        Algorithm::MoEsp => GamConfig::MOESP,
        Algorithm::Lesp => GamConfig::LESP,
        Algorithm::MoLesp => GamConfig::MOLESP,
        // cs-lint: allow(L002): documented `# Panics` contract — the
        // batch-only BFT variants have no streaming configuration.
        other => panic!("streaming evaluation requires a GAM-family algorithm, got {other}"),
    }
}

/// Opens a pull-based [`CtpStream`] over a GAM-family CTP search: the
/// search advances only as far as the results the caller consumes
/// (`stream.take(k)` is TOP-k-style early termination). The stream
/// owns the seed sets, so it can outlive the caller's locals; only the
/// graph stays borrowed. This is the pull twin of the push-based
/// [`evaluate_ctp_streaming`].
///
/// # Panics
/// Panics if `algo` is a BFT variant (batch-only reference algorithms).
pub fn stream_ctp(
    g: &Graph,
    seeds: SeedSets,
    algo: Algorithm,
    filters: Filters,
    order: QueueOrder,
    policy: QueuePolicy,
) -> CtpStream<'_> {
    let cfg = gam_config(algo);
    GamEngine::with_owned_seeds(g, seeds, cfg, filters, order, policy).into_stream()
}

#[cfg(test)]
mod pull_stream_tests {
    use super::*;
    use cs_graph::generate::chain;

    #[test]
    fn pull_stream_matches_batch() {
        let w = chain(5); // 32 results
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let batch = evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        let streamed: Vec<_> = stream_ctp(
            &w.graph,
            seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
        )
        .collect();
        assert_eq!(streamed.len(), batch.results.len());
        let mut a: Vec<_> = streamed.iter().map(|t| t.edges.to_vec()).collect();
        let mut b = batch.results.canonical();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn pull_stream_take_is_early_termination() {
        let w = chain(8); // 256 results
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let full = evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        let mut stream = stream_ctp(
            &w.graph,
            seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
        );
        let first: Vec<_> = stream.by_ref().take(5).collect();
        assert_eq!(first.len(), 5);
        assert!(
            stream.stats().grows < full.stats.grows,
            "pulling 5 of 256 results must not run the whole search \
             ({} grows vs {} for the full run)",
            stream.stats().grows,
            full.stats.grows
        );
        // The abandoned stream can still be drained to the full outcome.
        let rest = stream.into_outcome();
        assert_eq!(rest.results.len(), full.results.len());
    }

    #[test]
    fn pull_stream_respects_result_limit() {
        let w = chain(6);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let streamed: Vec<_> = stream_ctp(
            &w.graph,
            seeds,
            Algorithm::MoLesp,
            Filters::none().with_max_results(7),
            QueueOrder::SmallestFirst,
            QueuePolicy::Single,
        )
        .collect();
        assert_eq!(streamed.len(), 7);
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use cs_graph::generate::chain;

    #[test]
    fn streams_every_result_once() {
        let w = chain(5); // 32 results
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let mut streamed = Vec::new();
        let out = evaluate_ctp_streaming(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
            |r| {
                streamed.push(r.edges.to_vec());
                true
            },
        );
        assert_eq!(streamed.len(), 32);
        let mut a = streamed.clone();
        a.sort();
        a.dedup();
        assert_eq!(a.len(), 32, "no duplicates streamed");
        assert_eq!(out.results.len(), 32);
    }

    #[test]
    fn callback_false_stops_search() {
        let w = chain(8); // 256 results
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let mut count = 0usize;
        let out = evaluate_ctp_streaming(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
            |_| {
                count += 1;
                count < 10
            },
        );
        assert_eq!(count, 10);
        assert!(out.results.len() <= 10);
    }

    #[test]
    #[should_panic(expected = "GAM-family")]
    fn bft_streaming_rejected() {
        let w = chain(2);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        evaluate_ctp_streaming(
            &w.graph,
            &seeds,
            Algorithm::Bft,
            Filters::none(),
            QueueOrder::SmallestFirst,
            |_| true,
        );
    }
}
