//! The breadth-first baseline algorithms (paper §4.1, §4.3): BFT,
//! BFT-M (single Merge pass), and BFT-AM (aggressive Merge).
//!
//! Unlike GAM, BFT views a tree as a bare edge set and grows it from
//! *any* of its nodes, generation by generation. A tree reaching full
//! `sat` must be **minimised** (stripping edges that do not lead to a
//! seed) before being reported — the per-result cost the paper blames
//! for BFT's poor performance (§5.4.1).

use crate::config::{Filters, QueueOrder};
use crate::result::{ResultSet, ResultTree, SearchOutcome, SearchStats};
use crate::seedmask::SeedMask;
use crate::seeds::SeedSets;
use crate::tree::{nodes_intersect_only_at, sorted_insert, sorted_union};
use cs_graph::fxhash::{FxHashMap, FxHashSet};
use cs_graph::{EdgeId, Graph, NodeId};
use std::time::Instant;

/// Merge behaviour of the BFT variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BftMerge {
    /// Plain BFT: Grow only.
    None,
    /// BFT-M: each grown tree merges once with all compatible partners,
    /// but merge results are not merged again in the same step.
    Single,
    /// BFT-AM: merge results merge again, exhaustively.
    Aggressive,
}

/// An unrooted tree (edge set) in the BFT search.
#[derive(Debug, Clone)]
struct UTree {
    edges: Box<[EdgeId]>,
    nodes: Box<[NodeId]>,
    sat: SeedMask,
}

/// The BFT-family search state.
struct BftEngine<'g> {
    g: &'g Graph,
    seeds: &'g SeedSets,
    merge: BftMerge,
    filters: Filters,
    label_filter: Option<FxHashSet<cs_graph::LabelId>>,
    /// Every tree ever built, for duplicate suppression ("any tree
    /// built during the search must be stored", §4.1). Keyed by edge
    /// set; the root is irrelevant here. Empty edge sets (Init trees)
    /// are distinguished by their single node.
    memory: FxHashSet<(Box<[EdgeId]>, NodeId)>,
    trees: Vec<UTree>,
    /// Node → tree indices containing it (merge-partner index).
    by_node: FxHashMap<NodeId, Vec<usize>>,
    results: ResultSet,
    stats: SearchStats,
    deadline: Option<Instant>,
    stop: bool,
}

impl<'g> BftEngine<'g> {
    fn anchor(t: &UTree) -> NodeId {
        t.nodes.first().copied().unwrap_or(NodeId(0))
    }

    /// Registers a tree if unseen; returns its index.
    fn register(&mut self, t: UTree) -> Option<usize> {
        if !self.memory.insert((t.edges.clone(), Self::anchor(&t))) {
            self.stats.pruned += 1;
            return None;
        }
        self.stats.provenances += 1;
        if let Some(maxp) = self.filters.max_provenances {
            if self.stats.provenances >= maxp {
                self.stats.budget_exhausted = true;
                self.stop = true;
            }
        }
        let full = t.sat.union(self.seeds.presatisfied()) == self.seeds.full();
        let idx = self.trees.len();
        self.trees.push(t);
        if full {
            self.report(idx);
            // A full-sat tree cannot gain new seeds (Grow2 forbids
            // seeds of covered sets), so any growth minimises back to
            // the same result: it is terminal — unless an `N` seed set
            // is present (§4.9), where supertrees are further results.
            if self.seeds.presatisfied().is_empty() {
                return None;
            }
        }
        for &n in self.trees[idx].nodes.iter() {
            self.by_node.entry(n).or_default().push(idx);
        }
        Some(idx)
    }

    /// Minimises a full-sat tree and inserts it into the results.
    fn report(&mut self, idx: usize) {
        let t = &self.trees[idx];
        // With an `N` seed set, non-seed leaves are the N-matches and
        // must not be stripped.
        let (edges, nodes) = if self.seeds.presatisfied().is_empty() {
            minimize(self.g, &t.edges, self.seeds)
        } else {
            (t.edges.clone(), t.nodes.clone())
        };
        let root = nodes.first().copied().unwrap_or(Self::anchor(t));
        let r = ResultTree::from_tree(edges, nodes, root, self.seeds);
        debug_assert!(
            crate::result::check_result_minimal(self.g, &r, self.seeds).is_ok(),
            "minimisation failed"
        );
        self.results.insert(r);
        if let Some(k) = self.filters.max_results {
            if self.results.len() >= k {
                self.stop = true;
            }
        }
    }

    /// All Grow extensions of tree `idx` (from any node).
    fn grow_all(&mut self, idx: usize) -> Vec<usize> {
        let mut new_ids = Vec::new();
        let t = self.trees[idx].clone();
        if let Some(maxe) = self.filters.max_edges {
            if t.edges.len() + 1 > maxe {
                return new_ids;
            }
        }
        for &n in t.nodes.iter() {
            for a in self.g.adjacent(n) {
                if self.stop {
                    return new_ids;
                }
                // For an unrooted tree the UNI semantics cannot be
                // enforced incrementally; BFT is used as the
                // bidirectional reference algorithm only.
                if let Some(lf) = &self.label_filter {
                    if !lf.contains(&self.g.edge(a.edge()).label) {
                        continue;
                    }
                }
                if t.nodes.binary_search(&a.other()).is_ok() {
                    continue; // Grow1
                }
                if !self.seeds.membership(a.other()).disjoint(t.sat) {
                    continue; // Grow2
                }
                self.stats.grows += 1;
                let nt = UTree {
                    edges: sorted_insert(&t.edges, a.edge()),
                    nodes: sorted_insert(&t.nodes, a.other()),
                    sat: t.sat.union(self.seeds.membership(a.other())),
                };
                if let Some(id) = self.register(nt) {
                    new_ids.push(id);
                }
            }
        }
        new_ids
    }

    /// Merges tree `idx` with every compatible partner; returns newly
    /// created tree indices.
    fn merge_with_partners(&mut self, idx: usize) -> Vec<usize> {
        let mut created = Vec::new();
        let t = self.trees[idx].clone();
        // Candidate partners share at least one node.
        let mut cands: Vec<usize> = Vec::new();
        for &n in t.nodes.iter() {
            if let Some(v) = self.by_node.get(&n) {
                cands.extend_from_slice(v);
            }
        }
        cands.sort_unstable();
        cands.dedup();
        for p in cands {
            if p == idx || self.stop {
                continue;
            }
            let other = &self.trees[p];
            // The shared node must be unique: find it.
            let Some(shared) = single_shared_node(&t.nodes, &other.nodes) else {
                continue;
            };
            // Seed sets covered by both trees are only admissible when
            // the witness is the shared node itself (same relaxation as
            // rooted Merge2 — see `TreeStore::make_merge`).
            let overlap = t.sat.intersect(other.sat);
            if !self.seeds.membership(shared).superset_of(overlap) {
                continue;
            }
            if !nodes_intersect_only_at(&t.nodes, &other.nodes, shared) {
                continue;
            }
            if let Some(maxe) = self.filters.max_edges {
                if t.edges.len() + other.edges.len() > maxe {
                    continue;
                }
            }
            self.stats.merges += 1;
            let nt = UTree {
                edges: sorted_union(&t.edges, &other.edges),
                nodes: sorted_union(&t.nodes, &other.nodes),
                sat: t.sat.union(other.sat),
            };
            if let Some(id) = self.register(nt) {
                created.push(id);
            }
        }
        created
    }

    fn check_time(&mut self) {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.stats.timed_out = true;
                self.stop = true;
            }
        }
        if self.filters.cancel_requested() {
            self.stats.cancelled = true;
            self.stop = true;
        }
    }

    fn run(mut self) -> SearchOutcome {
        let start = Instant::now();
        self.deadline = self.filters.timeout.map(|t| start + t);

        // Generation 0: Init trees.
        let mut generation: Vec<usize> = Vec::new();
        for n in self.seeds.all_seed_nodes() {
            let t = UTree {
                edges: Box::new([]),
                nodes: vec![n].into_boxed_slice(),
                sat: self.seeds.membership(n),
            };
            if let Some(id) = self.register(t) {
                generation.push(id);
            }
            if self.stop {
                break;
            }
        }

        while !generation.is_empty() && !self.stop {
            self.check_time();
            let mut next = Vec::new();
            for idx in generation {
                if self.stop {
                    break;
                }
                let grown = self.grow_all(idx);
                for gidx in grown {
                    next.push(gidx);
                    match self.merge {
                        BftMerge::None => {}
                        // Step (2a) only: merge the grown tree with all
                        // compatible partners, but leave the merge
                        // results un-merged (§4.3).
                        BftMerge::Single => {
                            next.extend(self.merge_with_partners(gidx));
                        }
                        // Steps (2a)+(2b): merge results merge again
                        // until closure.
                        BftMerge::Aggressive => {
                            let mut work = self.merge_with_partners(gidx);
                            while let Some(midx) = work.pop() {
                                next.push(midx);
                                if self.stop {
                                    break;
                                }
                                work.extend(self.merge_with_partners(midx));
                            }
                        }
                    }
                    if self.stop {
                        break;
                    }
                }
            }
            generation = next;
        }

        SearchOutcome {
            results: self.results,
            stats: self.stats,
            duration: start.elapsed(),
        }
    }
}

/// Returns the single shared node of two sorted node arrays, or `None`
/// if they share zero or two-plus nodes.
fn single_shared_node(a: &[NodeId], b: &[NodeId]) -> Option<NodeId> {
    let (mut i, mut j) = (0, 0);
    let mut found = None;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if found.is_some() {
                    return None;
                }
                found = Some(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    found
}

/// Minimises a connected full-sat edge set: repeatedly strips non-seed
/// leaves ("removing all edges that do not lead to a seed", §4.1).
/// Returns sorted `(edges, nodes)`.
pub fn minimize(g: &Graph, edges: &[EdgeId], seeds: &SeedSets) -> (Box<[EdgeId]>, Box<[NodeId]>) {
    let mut cur: Vec<EdgeId> = edges.to_vec();
    loop {
        // Degree count.
        let mut deg: FxHashMap<NodeId, u32> = FxHashMap::default();
        for &e in &cur {
            let ed = g.edge(e);
            *deg.entry(ed.src).or_default() += 1;
            *deg.entry(ed.dst).or_default() += 1;
        }
        let before = cur.len();
        cur.retain(|&e| {
            let ed = g.edge(e);
            let strip = |n: NodeId| deg[&n] == 1 && seeds.membership(n).is_empty();
            !(strip(ed.src) || strip(ed.dst))
        });
        if cur.len() == before {
            break;
        }
    }
    cur.sort_unstable();
    let mut nodes: Vec<NodeId> = Vec::new();
    for &e in &cur {
        let ed = g.edge(e);
        nodes.push(ed.src);
        nodes.push(ed.dst);
    }
    nodes.sort_unstable();
    nodes.dedup();
    if nodes.is_empty() {
        // 0-edge result: the minimal tree is one seed node; callers
        // handle that case before minimising.
    }
    (cur.into_boxed_slice(), nodes.into_boxed_slice())
}

/// Runs a BFT-family search.
pub fn run_bft(
    g: &Graph,
    seeds: &SeedSets,
    merge: BftMerge,
    filters: Filters,
    _order: QueueOrder,
) -> SearchOutcome {
    let label_filter = filters.resolve_labels(g);
    let engine = BftEngine {
        g,
        seeds,
        merge,
        filters,
        label_filter,
        memory: FxHashSet::default(),
        trees: Vec::new(),
        by_node: FxHashMap::default(),
        results: ResultSet::new(),
        stats: SearchStats::default(),
        deadline: None,
        stop: false,
    };
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::gam::{run_gam_family, GamConfig};
    use cs_graph::generate::{chain, comb, line, star};

    fn bft_outcome(w: &cs_graph::generate::Workload, merge: BftMerge) -> SearchOutcome {
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        run_bft(
            &w.graph,
            &seeds,
            merge,
            Filters::none(),
            QueueOrder::SmallestFirst,
        )
    }

    #[test]
    fn bft_complete_on_line() {
        for merge in [BftMerge::None, BftMerge::Single, BftMerge::Aggressive] {
            let w = line(3, 1);
            let out = bft_outcome(&w, merge);
            assert_eq!(out.results.len(), 1, "{merge:?}");
        }
    }

    #[test]
    fn bft_matches_gam_on_chain() {
        // Both must find all 2^N results of the Figure 2 chain.
        for n in 1..=4 {
            let w = chain(n);
            let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
            let bft = run_bft(
                &w.graph,
                &seeds,
                BftMerge::None,
                Filters::none(),
                QueueOrder::SmallestFirst,
            );
            let gam = run_gam_family(
                &w.graph,
                &seeds,
                GamConfig::GAM,
                Filters::none(),
                QueueOrder::SmallestFirst,
            );
            assert_eq!(bft.results.canonical(), gam.results.canonical(), "n={n}");
        }
    }

    #[test]
    fn bft_matches_gam_on_star_and_comb() {
        let ws = [star(3, 2), comb(2, 1, 2, 1)];
        for w in &ws {
            let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
            let bft = run_bft(
                &w.graph,
                &seeds,
                BftMerge::Aggressive,
                Filters::none(),
                QueueOrder::SmallestFirst,
            );
            let gam = run_gam_family(
                &w.graph,
                &seeds,
                GamConfig::GAM,
                Filters::none(),
                QueueOrder::SmallestFirst,
            );
            assert_eq!(bft.results.canonical(), gam.results.canonical());
        }
    }

    #[test]
    fn bft_needs_minimisation() {
        // On a line with a side branch the BFT search builds trees with
        // useless edges which minimisation strips; the reported result
        // must be exactly the seed-to-seed path.
        use cs_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let x = b.add_node("x");
        let y = b.add_node("y"); // dead-end branch
        let c = b.add_node("C");
        let e0 = b.add_edge(a, "r", x);
        let _dead = b.add_edge(x, "r", y);
        let e2 = b.add_edge(x, "r", c);
        let g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![c]]).unwrap();
        let out = run_bft(
            &g,
            &seeds,
            BftMerge::None,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results.trees()[0].edges.as_ref(), &[e0, e2]);
    }

    #[test]
    fn minimize_strips_dead_branches() {
        use cs_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let x = b.add_node("x");
        let y = b.add_node("y");
        let z = b.add_node("z");
        let c = b.add_node("C");
        let e0 = b.add_edge(a, "r", x);
        let e1 = b.add_edge(x, "r", y);
        let e2 = b.add_edge(y, "r", z); // branch of length 2
        let e3 = b.add_edge(x, "r", c);
        let g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![c]]).unwrap();
        let (edges, nodes) = minimize(&g, &[e0, e1, e2, e3], &seeds);
        assert_eq!(edges.as_ref(), &[e0, e3]);
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn variants_build_different_amounts() {
        // BFT-AM merges more than BFT-M, which merges more than BFT
        // (counted as merge operations attempted).
        let w = star(3, 2);
        let none = bft_outcome(&w, BftMerge::None);
        let single = bft_outcome(&w, BftMerge::Single);
        let aggressive = bft_outcome(&w, BftMerge::Aggressive);
        assert_eq!(none.stats.merges, 0);
        assert!(single.stats.merges > 0);
        assert!(aggressive.stats.merges >= single.stats.merges);
        // All complete variants agree on the results.
        assert_eq!(none.results.canonical(), single.results.canonical());
        assert_eq!(none.results.canonical(), aggressive.results.canonical());
    }

    #[test]
    fn budget_and_limit_respected() {
        let w = chain(8);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = run_bft(
            &w.graph,
            &seeds,
            BftMerge::None,
            Filters::none().with_max_provenances(100),
            QueueOrder::SmallestFirst,
        );
        assert!(out.stats.budget_exhausted);
        let out = run_bft(
            &w.graph,
            &seeds,
            BftMerge::None,
            Filters::none().with_max_results(3),
            QueueOrder::SmallestFirst,
        );
        assert_eq!(out.results.len(), 3);
    }

    #[test]
    fn single_shared_node_cases() {
        use cs_graph::NodeId;
        let n = |i| NodeId(i);
        assert_eq!(single_shared_node(&[n(1), n(2)], &[n(2), n(3)]), Some(n(2)));
        assert_eq!(single_shared_node(&[n(1)], &[n(2)]), None);
        assert_eq!(
            single_shared_node(&[n(1), n(2)], &[n(1), n(2)]),
            None,
            "two shared nodes"
        );
    }
}
