//! The GAM family of CTP search algorithms (paper §4.2–§4.7,
//! Algorithms 1–5).
//!
//! One engine implements GAM, ESP, MoESP, LESP and MoLESP; the paper's
//! refinements are configuration flags:
//!
//! * [`GamConfig::esp`] — edge-set pruning (Def. 4.3): discard any
//!   provenance whose (non-empty) edge set was already built.
//! * [`GamConfig::mo`] — merge-oriented extra trees (§4.5): when a
//!   provenance gains seeds over its children, inject copies re-rooted
//!   at each seed node; Grow is disabled on them.
//! * [`GamConfig::lesp`] — limited edge-set pruning (§4.6): a tree
//!   rooted at `n` with `Σ(ss_n) ≥ 3` and `d_n ≥ 3` is spared from ESP
//!   unless an identical *rooted* tree exists.
//!
//! `MoLESP = esp + mo + lesp` — complete for `m ≤ 3` (Property 8) and
//! for all results decomposing into `(u, n)`-rooted merges (Property 9).

use crate::config::{Filters, QueueOrder, QueuePolicy};
use crate::result::{ResultSet, ResultTree, SearchOutcome, SearchStats};
use crate::seedmask::SeedMask;
use crate::seeds::SeedSets;
use crate::tree::{Provenance, TreeData, TreeId, TreeStore};
use cs_graph::fxhash::{FxHashMap, FxHashSet};
use cs_graph::{EdgeId, Graph, LabelId, NodeId};
use std::collections::{BinaryHeap, VecDeque};
use std::time::{Duration, Instant};

/// Which refinements are active on top of plain GAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GamConfig {
    /// Edge-set pruning (§4.4).
    pub esp: bool,
    /// Merge-oriented tree injection (§4.5).
    pub mo: bool,
    /// Limited edge-set pruning (§4.6).
    pub lesp: bool,
}

impl GamConfig {
    /// Plain GAM (§4.2).
    pub const GAM: GamConfig = GamConfig {
        esp: false,
        mo: false,
        lesp: false,
    };
    /// ESP (§4.4).
    pub const ESP: GamConfig = GamConfig {
        esp: true,
        mo: false,
        lesp: false,
    };
    /// MoESP (§4.5).
    pub const MOESP: GamConfig = GamConfig {
        esp: true,
        mo: true,
        lesp: false,
    };
    /// LESP (§4.6).
    pub const LESP: GamConfig = GamConfig {
        esp: true,
        mo: false,
        lesp: true,
    };
    /// MoLESP (§4.7) — the paper's headline algorithm.
    pub const MOLESP: GamConfig = GamConfig {
        esp: true,
        mo: true,
        lesp: true,
    };
}

/// Streaming consumer type for [`GamEngine::run_streaming`].
type ResultCallback<'g> = Box<dyn FnMut(&ResultTree) -> bool + 'g>;

/// The engine's seed sets: borrowed for the classic entry points, owned
/// for pull-based streaming ([`GamEngine::into_stream`]), where the
/// stream must carry the seeds along with the engine.
enum SeedsRef<'g> {
    /// Seeds borrowed from the caller.
    Borrowed(&'g SeedSets),
    /// Seeds owned by the engine.
    Owned(Box<SeedSets>),
}

impl SeedsRef<'_> {
    fn get(&self) -> &SeedSets {
        match self {
            SeedsRef::Borrowed(s) => s,
            SeedsRef::Owned(b) => b,
        }
    }
}

/// A Grow opportunity in the priority queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QEntry {
    key: i64,
    seq: u64,
    tree: TreeId,
    edge: EdgeId,
}

impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on key; FIFO (smaller seq first) on ties.
        self.key
            .cmp(&other.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Single or per-`sat`-mask balanced queues (§4.9), generic over the
/// entry type: the sequential engine queues arena-indexed [`QEntry`]s,
/// the partitioned parallel engine ([`crate::algo::partition`]) queues
/// self-contained (and therefore stealable) entries.
pub(crate) struct Queues<E: Ord> {
    policy: QueuePolicy,
    single: BinaryHeap<E>,
    per: FxHashMap<SeedMask, BinaryHeap<E>>,
    len: usize,
}

impl<E: Ord> Queues<E> {
    pub(crate) fn new(policy: QueuePolicy) -> Self {
        Queues {
            policy,
            single: BinaryHeap::new(),
            per: FxHashMap::default(),
            len: 0,
        }
    }

    /// Number of queued entries across all per-mask queues.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn push(&mut self, mask: SeedMask, e: E) {
        self.len += 1;
        match self.policy {
            QueuePolicy::Single => self.single.push(e),
            QueuePolicy::Balanced => self.per.entry(mask).or_default().push(e),
        }
    }

    /// Pops up to half the queued entries (at least one, when any are
    /// queued) — the batch a work-stealing thief takes, so thieves
    /// re-balance in one locked operation instead of coming back for
    /// every task.
    pub(crate) fn steal_half(&mut self) -> Vec<E> {
        let take = self.len.div_ceil(2);
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            match self.pop() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out
    }

    pub(crate) fn pop(&mut self) -> Option<E> {
        match self.policy {
            QueuePolicy::Single => {
                let e = self.single.pop();
                if e.is_some() {
                    self.len -= 1;
                }
                e
            }
            QueuePolicy::Balanced => {
                // Grow from the queue currently holding the fewest
                // pairs, so small seed sets' neighbourhoods expand
                // first (§4.9).
                let key = self
                    .per
                    .iter()
                    .filter(|(_, q)| !q.is_empty())
                    .min_by_key(|(_, q)| q.len())
                    .map(|(&k, _)| k)?;
                let e = self.per.get_mut(&key).and_then(BinaryHeap::pop);
                if e.is_some() {
                    self.len -= 1;
                }
                e
            }
        }
    }
}

/// The GAM-family search engine. Construct with [`GamEngine::new`],
/// run with [`GamEngine::run`] — or pull results incrementally through
/// [`GamEngine::into_stream`].
pub struct GamEngine<'g> {
    g: &'g Graph,
    seeds: SeedsRef<'g>,
    cfg: GamConfig,
    filters: Filters,
    label_filter: Option<FxHashSet<LabelId>>,
    order: QueueOrder,
    store: TreeStore,
    queue: Queues<QEntry>,
    seq: u64,
    /// Edge set → roots for which a tree over it has been built.
    /// Implements both GAM's rooted-tree dedup and ESP's edge-set
    /// history (Hist of Algorithm 1).
    hist: FxHashMap<Box<[EdgeId]>, Vec<NodeId>>,
    /// TreesRootedIn of Algorithm 3 (result trees are excluded — they
    /// can never merge, their `sat` overlaps everything).
    trees_rooted_in: FxHashMap<NodeId, Vec<TreeId>>,
    /// Seed signatures ss_n (§4.6), indexed by node.
    ss: Vec<SeedMask>,
    /// Aggressive-merge worklist.
    pending_merge: Vec<TreeId>,
    /// Arena ids of reported results (aligned with `results` order).
    result_ids: Vec<TreeId>,
    results: ResultSet,
    stats: SearchStats,
    deadline: Option<Instant>,
    tick: u32,
    stop: bool,
    /// Init trees not yet processed — fed by [`GamEngine::begin`],
    /// drained before the Grow loop (Algorithm 1 lines 3–7). Holding
    /// them as engine state (rather than a local loop) is what makes
    /// the search resumable one [`GamEngine::step`] at a time.
    init_pending: VecDeque<NodeId>,
    /// Streaming consumer: called on each new result; returning false
    /// stops the search (see [`GamEngine::run_streaming`]).
    on_result: Option<ResultCallback<'g>>,
}

impl<'g> GamEngine<'g> {
    /// Prepares a search over `g` with the given seed sets and
    /// configuration.
    pub fn new(
        g: &'g Graph,
        seeds: &'g SeedSets,
        cfg: GamConfig,
        filters: Filters,
        order: QueueOrder,
        policy: QueuePolicy,
    ) -> Self {
        Self::with_seeds(g, SeedsRef::Borrowed(seeds), cfg, filters, order, policy)
    }

    /// Like [`GamEngine::new`], but the engine takes ownership of the
    /// seed sets — required by [`GamEngine::into_stream`], where the
    /// returned stream must carry the seeds along with the engine.
    pub fn with_owned_seeds(
        g: &'g Graph,
        seeds: SeedSets,
        cfg: GamConfig,
        filters: Filters,
        order: QueueOrder,
        policy: QueuePolicy,
    ) -> Self {
        Self::with_seeds(
            g,
            SeedsRef::Owned(Box::new(seeds)),
            cfg,
            filters,
            order,
            policy,
        )
    }

    fn with_seeds(
        g: &'g Graph,
        seeds: SeedsRef<'g>,
        cfg: GamConfig,
        filters: Filters,
        order: QueueOrder,
        policy: QueuePolicy,
    ) -> Self {
        let label_filter = filters.resolve_labels(g);
        // Initialise ss_n: seeds start with their membership mask,
        // other nodes with 0 (§4.6).
        let mut ss = vec![SeedMask::EMPTY; g.node_count()];
        for n in seeds.get().all_seed_nodes() {
            ss[n.index()] = seeds.get().membership(n);
        }
        GamEngine {
            g,
            seeds,
            cfg,
            filters,
            label_filter,
            order,
            store: TreeStore::new(),
            queue: Queues::new(policy),
            seq: 0,
            hist: FxHashMap::default(),
            trees_rooted_in: FxHashMap::default(),
            ss,
            pending_merge: Vec::new(),
            result_ids: Vec::new(),
            results: ResultSet::new(),
            stats: SearchStats::default(),
            deadline: None,
            tick: 0,
            stop: false,
            init_pending: VecDeque::new(),
            on_result: None,
        }
    }

    /// Runs the search to completion (or until a filter/limit stops it).
    pub fn run(mut self) -> SearchOutcome {
        self.run_inner()
    }

    /// Runs the search, streaming every new result to `on_result` the
    /// moment it is found (the paper's "as many results as possible,
    /// as fast as possible" contract, Observation 2). The callback
    /// returns `false` to stop the search early — e.g. once an
    /// application-side score threshold is met.
    pub fn run_streaming(
        mut self,
        on_result: impl FnMut(&ResultTree) -> bool + 'g,
    ) -> SearchOutcome {
        self.on_result = Some(Box::new(on_result));
        self.run_inner()
    }

    /// Like [`GamEngine::run`], but also returns the tree arena and the
    /// arena ids of the reported results, enabling provenance
    /// inspection (Def. 4.1) via [`crate::explain`].
    pub fn run_traced(mut self) -> crate::explain::TracedOutcome {
        let outcome = self.run_inner();
        crate::explain::TracedOutcome {
            outcome,
            store: self.store,
            result_ids: self.result_ids,
        }
    }

    fn run_inner(&mut self) -> SearchOutcome {
        let start = Instant::now();
        self.begin(start);
        while self.step() {}
        SearchOutcome {
            results: std::mem::take(&mut self.results),
            stats: self.stats.clone(),
            duration: start.elapsed(),
        }
    }

    /// Arms the deadline and queues the Init trees (Algorithm 1 lines
    /// 3–7). Must be called exactly once, before the first
    /// [`GamEngine::step`].
    fn begin(&mut self, start: Instant) {
        self.deadline = self.filters.timeout.map(|t| start + t);
        self.init_pending = self.seeds.get().all_seed_nodes().into();
    }

    /// Advances the search by one unit of work: processing one Init
    /// tree while any is pending, then one Grow opportunity per call
    /// (Algorithm 1 lines 8–11). Returns `false` once the search is
    /// exhausted or stopped (filters, timeout, streaming callback) —
    /// the resumption point [`CtpStream`] pulls on.
    fn step(&mut self) -> bool {
        if self.stop {
            return false;
        }
        if let Some(n) = self.init_pending.pop_front() {
            let t = self.store.make_init(n, self.seeds.get());
            self.process_tree(t);
            self.drain_merges();
            return !self.stop;
        }
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        self.check_time();
        if self.stop {
            return false;
        }
        let td = self.store.get(entry.tree);
        let new_root = self.g.other_endpoint(entry.edge, td.root);
        let grown = self
            .store
            .make_grow(entry.tree, td, entry.edge, new_root, self.seeds.get());
        self.stats.grows += 1;
        // Algorithm 1 line 10: update ss_root(t') before processing.
        if !grown.path_from.is_empty() {
            let slot = &mut self.ss[grown.root.index()];
            *slot = slot.union(grown.path_from);
        }
        self.process_tree(grown);
        self.drain_merges();
        !self.stop
    }

    /// Converts the engine into a pull-based stream over its results.
    /// Each [`Iterator::next`] call advances the search just far enough
    /// to discover the next result, so consumers pay only for what they
    /// pull — dropping the stream after `k` results is the TOP-k-style
    /// early termination of the paper's "as many results as possible,
    /// as fast as possible" contract (Observation 2), in pull form.
    pub fn into_stream(mut self) -> CtpStream<'g> {
        let start = Instant::now();
        self.begin(start);
        CtpStream {
            engine: self,
            start,
            emitted: 0,
            exhausted: false,
        }
    }

    /// Algorithm 4 `isNew`: the history check with LESP's sparing rule.
    fn is_new(&self, t: &TreeData) -> bool {
        let Some(roots) = self.hist.get(t.edges.as_ref()) else {
            return true;
        };
        if self.cfg.esp && !t.edges.is_empty() {
            // The edge set exists. LESP spares a tree whose root is
            // well-connected to seeds, unless the identical rooted tree
            // exists (Algorithm 4 lines 4–8).
            if self.cfg.lesp {
                let ssr = self.ss[t.root.index()];
                if ssr.count() >= 3 && self.g.degree(t.root) >= 3 {
                    return !roots.contains(&t.root);
                }
            }
            false
        } else {
            // GAM keeps only the first provenance per *rooted* tree;
            // Init trees (empty edge set) dedup by root under every
            // configuration.
            !roots.contains(&t.root)
        }
    }

    /// Algorithm 2 `processTree`: history registration, result
    /// reporting, merge recording, Mo injection, queue feeding.
    fn process_tree(&mut self, t: TreeData) -> Option<TreeId> {
        if self.stop {
            return None;
        }
        if !self.is_new(&t) {
            self.stats.pruned += 1;
            return None;
        }
        self.hist.entry(t.edges.clone()).or_default().push(t.root);
        self.stats.provenances += 1;
        if let Some(maxp) = self.filters.max_provenances {
            if self.stats.provenances >= maxp {
                self.stats.budget_exhausted = true;
                self.stop = true;
            }
        }

        let sat_total = t.sat.union(self.seeds.get().presatisfied());
        let is_result = sat_total == self.seeds.get().full();
        let is_mo = t.is_mo;
        let root = t.root;
        let seeds_increased = match t.provenance {
            Provenance::Grow(parent, _) => t.sat != self.store.get(parent).sat,
            Provenance::Merge(_, _) => true,
            Provenance::Init(_) | Provenance::Mo(_, _) => false,
        };
        let id = self.store.push(t);

        if is_result {
            let td = self.store.get(id);
            let r =
                ResultTree::from_tree(td.edges.clone(), td.nodes.clone(), root, self.seeds.get());
            debug_assert!(
                crate::result::check_result_minimal(self.g, &r, self.seeds.get()).is_ok(),
                "GAM produced a non-minimal result (Property 2 violated)"
            );
            let inserted = {
                // Stream before moving `r` into the set.
                let keep_going = match &mut self.on_result {
                    Some(cb) if !self.results.contains(&r.edges, r.nodes[0]) => cb(&r),
                    _ => true,
                };
                if !keep_going {
                    self.stop = true;
                }
                self.results.insert(r)
            };
            if inserted {
                self.result_ids.push(id);
            }
            if let Some(k) = self.filters.max_results {
                if self.results.len() >= k {
                    self.stop = true;
                }
            }
            // With explicit seed sets only, a result is terminal: its
            // `sat` overlaps every candidate partner, and growing it
            // cannot reach new seeds (Grow2). With an `N` seed set
            // (§4.9), every supertree is a further result (a different
            // N-match), so the tree stays active.
            if self.seeds.get().presatisfied().is_empty() {
                return Some(id);
            }
        }

        // recordForMerging (Algorithm 3 line 1).
        self.trees_rooted_in.entry(root).or_default().push(id);
        self.pending_merge.push(id);

        // MoESP injection (Algorithm 3 lines 2–5, restricted per §4.5
        // to provenances that gained seeds; disabled under UNI, where
        // re-rooting at a seed breaks direction consistency).
        if self.cfg.mo && seeds_increased && !self.filters.uni {
            self.inject_mo(id);
        }

        // Queue Grow opportunities (Algorithm 2 lines 8–14); Grow is
        // disabled on Mo trees.
        if !is_mo {
            self.queue_grows(id);
        }
        Some(id)
    }

    /// Creates the MoESP copies of tree `id`, re-rooted at each of its
    /// seed nodes (other than its root), and schedules them for merging.
    fn inject_mo(&mut self, id: TreeId) {
        let td = self.store.get(id);
        let mo_roots: Vec<NodeId> = td
            .nodes
            .iter()
            .copied()
            .filter(|&n| n != td.root && self.seeds.get().is_seed(n))
            .collect();
        for r in mo_roots {
            // Skip if the identical rooted tree already exists; Mo
            // bypasses edge-set pruning by design, but exact duplicates
            // are useless.
            if self
                .hist
                .get(self.store.get(id).edges.as_ref())
                .is_some_and(|roots| roots.contains(&r))
            {
                continue;
            }
            let mo = self.store.make_mo(id, self.store.get(id), r);
            self.stats.mo_copies += 1;
            self.hist.entry(mo.edges.clone()).or_default().push(r);
            self.stats.provenances += 1;
            let mo_id = self.store.push(mo);
            self.trees_rooted_in.entry(r).or_default().push(mo_id);
            self.pending_merge.push(mo_id);
        }
    }

    /// Pushes every admissible (tree, edge) Grow pair for tree `id`.
    fn queue_grows(&mut self, id: TreeId) {
        let td = self.store.get(id);
        let mut pushes: Vec<(SeedMask, QEntry)> = Vec::new();
        for a in self.g.adjacent(td.root) {
            // UNI (§4.8): to keep "root reaches all seeds via directed
            // paths" invariant, grow only along edges *entering* the
            // current root (the new root points at the old one).
            if self.filters.uni && a.outgoing() {
                continue;
            }
            if let Some(lf) = &self.label_filter {
                if !lf.contains(&self.g.edge(a.edge()).label) {
                    continue;
                }
            }
            // Grow1: no repeated node (also rejects self-loops).
            if td.contains_node(a.other()) {
                continue;
            }
            // Grow2: the new node is no seed of an already-covered set.
            if !self.seeds.get().membership(a.other()).disjoint(td.sat) {
                continue;
            }
            // MAX n (§4.8).
            if let Some(maxe) = self.filters.max_edges {
                if td.size() + 1 > maxe {
                    continue;
                }
            }
            let key = self.order.priority(self.g, td, a.edge());
            pushes.push((
                td.sat,
                QEntry {
                    key,
                    seq: 0, // assigned below
                    tree: id,
                    edge: a.edge(),
                },
            ));
        }
        for (mask, mut e) in pushes {
            e.seq = self.seq;
            self.seq += 1;
            self.stats.queue_pushes += 1;
            self.queue.push(mask, e);
        }
    }

    /// Algorithm 5 `MergeAll`, iteratively: drain the worklist of trees
    /// whose merge partners have not been tried yet.
    fn drain_merges(&mut self) {
        while let Some(cur) = self.pending_merge.pop() {
            if self.stop {
                self.pending_merge.clear();
                return;
            }
            self.check_time();
            let root = self.store.get(cur).root;
            let partners: Vec<TreeId> =
                self.trees_rooted_in.get(&root).cloned().unwrap_or_default();
            for p in partners {
                if p == cur || self.stop {
                    continue;
                }
                let (a, b) = (self.store.get(cur), self.store.get(p));
                if let Some(maxe) = self.filters.max_edges {
                    if a.size() + b.size() > maxe {
                        continue;
                    }
                }
                if let Some(m) = self.store.make_merge(cur, a, p, b, self.seeds.get()) {
                    self.stats.merges += 1;
                    self.process_tree(m);
                }
            }
        }
    }

    /// Periodic wall-clock + cooperative-cancellation check. Runs every
    /// 64 Grow steps, so a cancelled or past-deadline search stops
    /// mid-search (the resumable `step` loop observes `stop` on its
    /// next call) instead of running to completion.
    fn check_time(&mut self) {
        self.tick = self.tick.wrapping_add(1);
        if !self.tick.is_multiple_of(64) {
            return;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.stats.timed_out = true;
                self.stop = true;
            }
        }
        if self.filters.cancel_requested() {
            self.stats.cancelled = true;
            self.stop = true;
        }
    }
}

/// Convenience: runs a GAM-family search with a single queue.
pub fn run_gam_family(
    g: &Graph,
    seeds: &SeedSets,
    cfg: GamConfig,
    filters: Filters,
    order: QueueOrder,
) -> SearchOutcome {
    GamEngine::new(g, seeds, cfg, filters, order, QueuePolicy::Single).run()
}

/// A pull-based stream over a GAM-family search's results, created by
/// [`GamEngine::into_stream`].
///
/// Each [`Iterator::next`] call advances the underlying search only
/// until the next result is discovered, so the caller pays exactly for
/// the results it consumes: `stream.take(k)` is a true TOP-k-style
/// early termination — the push (callback) twin of this contract is
/// [`crate::evaluate_ctp_streaming`]. All of the engine's filters
/// (`MAX`, `LIMIT`, timeout, labels, `UNI`) apply unchanged; when a
/// filter stops the search the stream simply ends.
pub struct CtpStream<'g> {
    engine: GamEngine<'g>,
    start: Instant,
    /// Results already handed out (`engine.results` is append-only).
    emitted: usize,
    exhausted: bool,
}

impl CtpStream<'_> {
    /// The search statistics accumulated so far (they keep growing
    /// while the stream is pulled).
    pub fn stats(&self) -> &SearchStats {
        &self.engine.stats
    }

    /// Wall-clock time since the stream was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// True once the underlying search is exhausted (no further `next`
    /// can yield).
    pub fn is_exhausted(&self) -> bool {
        self.exhausted && self.emitted >= self.engine.results.len()
    }

    /// Drains the rest of the search and returns the complete
    /// [`SearchOutcome`] (all results, including the already-streamed
    /// prefix, in discovery order).
    pub fn into_outcome(mut self) -> SearchOutcome {
        while self.engine.step() {}
        SearchOutcome {
            results: std::mem::take(&mut self.engine.results),
            stats: self.engine.stats.clone(),
            duration: self.start.elapsed(),
        }
    }
}

impl Iterator for CtpStream<'_> {
    type Item = ResultTree;

    fn next(&mut self) -> Option<ResultTree> {
        while !self.exhausted && self.engine.results.len() <= self.emitted {
            if !self.engine.step() {
                self.exhausted = true;
            }
        }
        let tree = self.engine.results.trees().get(self.emitted)?.clone();
        self.emitted += 1;
        Some(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::generate::{chain, line, star};
    use cs_graph::{figure1, GraphBuilder};

    fn outcome(w: &cs_graph::generate::Workload, cfg: GamConfig) -> SearchOutcome {
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        run_gam_family(
            &w.graph,
            &seeds,
            cfg,
            Filters::none(),
            QueueOrder::SmallestFirst,
        )
    }

    #[test]
    fn gam_finds_line_result() {
        let w = line(3, 2);
        for cfg in [GamConfig::GAM, GamConfig::MOESP, GamConfig::MOLESP] {
            let out = outcome(&w, cfg);
            assert_eq!(out.results.len(), 1, "{cfg:?}");
            assert_eq!(out.results.trees()[0].size(), w.graph.edge_count());
        }
    }

    #[test]
    fn star_result_is_rooted_merge() {
        let w = star(4, 2);
        for cfg in [GamConfig::GAM, GamConfig::LESP, GamConfig::MOLESP] {
            let out = outcome(&w, cfg);
            assert_eq!(out.results.len(), 1, "{cfg:?}");
            assert_eq!(out.results.trees()[0].size(), 8);
        }
    }

    #[test]
    fn chain_has_exponential_results() {
        // Figure 2: 2^N results.
        for n in 1..=6 {
            let w = chain(n);
            let out = outcome(&w, GamConfig::MOLESP);
            assert_eq!(out.results.len(), 1 << n, "chain({n})");
            let gam = outcome(&w, GamConfig::GAM);
            assert_eq!(gam.results.len(), 1 << n, "GAM chain({n})");
        }
    }

    #[test]
    fn figure1_talpha_and_tbeta_found() {
        // Section 2: g1(S1,S2,S3) includes (n4,n6,n9,t_alpha) with
        // t_alpha = {e10,e9,e11} and (n2,n3,n9,t_beta) with
        // t_beta = {e1,e2,e17,e16}.
        let g = figure1();
        let s1 = vec![NodeId(1), NodeId(3)]; // Bob, Carole
        let s2 = vec![NodeId(2), NodeId(5)]; // Alice, Doug
        let s3 = vec![NodeId(8)]; // Elon
        let seeds = SeedSets::from_sets(vec![s1, s2, s3]).unwrap();
        let out = run_gam_family(
            &g,
            &seeds,
            GamConfig::MOLESP,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        let canon = out.results.canonical();
        let t_alpha = vec![EdgeId(8), EdgeId(9), EdgeId(10)];
        let t_beta = vec![EdgeId(0), EdgeId(1), EdgeId(15), EdgeId(16)];
        assert!(canon.contains(&t_alpha), "t_alpha missing: {canon:?}");
        assert!(
            canon.contains(&t_beta),
            "t_beta missing (requires bidirectional traversal)"
        );
    }

    #[test]
    fn esp_prunes_but_two_seeds_complete() {
        // Property 3: with 2 seed sets, ESP = GAM results.
        let w = line(2, 4);
        let gam = outcome(&w, GamConfig::GAM);
        let esp = outcome(&w, GamConfig::ESP);
        assert_eq!(gam.results.canonical(), esp.results.canonical());
        assert!(
            esp.stats.provenances <= gam.stats.provenances,
            "ESP should not build more provenances"
        );
    }

    #[test]
    fn max_edges_filter() {
        let w = chain(4); // results of size 4 each
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = run_gam_family(
            &w.graph,
            &seeds,
            GamConfig::MOLESP,
            Filters::none().with_max_edges(3),
            QueueOrder::SmallestFirst,
        );
        assert_eq!(out.results.len(), 0);
        let out = run_gam_family(
            &w.graph,
            &seeds,
            GamConfig::MOLESP,
            Filters::none().with_max_edges(4),
            QueueOrder::SmallestFirst,
        );
        assert_eq!(out.results.len(), 16);
    }

    #[test]
    fn label_filter_restricts_results() {
        // On the chain, allowing only label "a" leaves exactly 1 result.
        let w = chain(3);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = run_gam_family(
            &w.graph,
            &seeds,
            GamConfig::MOLESP,
            Filters::none().with_labels(["a"]),
            QueueOrder::SmallestFirst,
        );
        assert_eq!(out.results.len(), 1);
    }

    #[test]
    fn limit_stops_early() {
        let w = chain(8); // 256 results in total
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = run_gam_family(
            &w.graph,
            &seeds,
            GamConfig::MOLESP,
            Filters::none().with_max_results(5),
            QueueOrder::SmallestFirst,
        );
        assert_eq!(out.results.len(), 5);
    }

    #[test]
    fn provenance_budget_stops() {
        let w = chain(10);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = run_gam_family(
            &w.graph,
            &seeds,
            GamConfig::GAM,
            Filters::none().with_max_provenances(50),
            QueueOrder::SmallestFirst,
        );
        assert!(out.stats.budget_exhausted);
        assert!(out.stats.provenances <= 50);
    }

    #[test]
    fn uni_filter_directional() {
        // a -> x -> b : unidirectional tree rooted at a reaches b? No —
        // a reaches b along directed path a->x->b, so the UNI result
        // exists with root a.
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a");
        let x = gb.add_node("x");
        let bb = gb.add_node("b");
        gb.add_edge(a, "r", x);
        gb.add_edge(x, "r", bb);
        let g = gb.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![bb]]).unwrap();
        let out = run_gam_family(
            &g,
            &seeds,
            GamConfig::MOLESP,
            Filters::none().uni(),
            QueueOrder::SmallestFirst,
        );
        assert_eq!(out.results.len(), 1);

        // b -> x <- a has no root reaching both a and b: a reaches x
        // but not b; there is no common ancestor. Actually a -> x and
        // b -> x: the UNI tree must be rooted at a node with directed
        // paths to both seeds; no such node exists.
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a");
        let x = gb.add_node("x");
        let bb = gb.add_node("b");
        gb.add_edge(a, "r", x);
        gb.add_edge(bb, "r", x);
        let g = gb.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![bb]]).unwrap();
        let out = run_gam_family(
            &g,
            &seeds,
            GamConfig::MOLESP,
            Filters::none().uni(),
            QueueOrder::SmallestFirst,
        );
        assert_eq!(out.results.len(), 0, "no dominating root exists");
        // Without UNI the connection is found.
        let out = run_gam_family(
            &g,
            &seeds,
            GamConfig::MOLESP,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        assert_eq!(out.results.len(), 1);
    }

    #[test]
    fn single_node_result_when_seed_in_all_sets() {
        let g = figure1();
        let alice = NodeId(2);
        let seeds =
            SeedSets::from_sets(vec![vec![alice, NodeId(1)], vec![alice, NodeId(3)]]).unwrap();
        let out = run_gam_family(
            &g,
            &seeds,
            GamConfig::MOLESP,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        assert!(
            out.results.trees().iter().any(|t| t.edges.is_empty()),
            "Alice alone satisfies both sets"
        );
    }

    #[test]
    fn results_identical_across_orders_for_molesp() {
        // MoLESP's completeness is order-independent (m = 3).
        let w = star(3, 2);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let mut canons = Vec::new();
        for order in [
            QueueOrder::SmallestFirst,
            QueueOrder::LargestFirst,
            QueueOrder::Fifo,
        ] {
            let out = run_gam_family(&w.graph, &seeds, GamConfig::MOLESP, Filters::none(), order);
            canons.push(out.results.canonical());
        }
        assert_eq!(canons[0], canons[1]);
        assert_eq!(canons[1], canons[2]);
    }

    #[test]
    fn balanced_queue_policy_finds_results() {
        let w = line(3, 3);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = GamEngine::new(
            &w.graph,
            &seeds,
            GamConfig::MOLESP,
            Filters::none(),
            QueueOrder::SmallestFirst,
            QueuePolicy::Balanced,
        )
        .run();
        assert_eq!(out.results.len(), 1);
    }

    use cs_graph::NodeId;
}
