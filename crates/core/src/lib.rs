//! # cs-core — connecting tree pattern (CTP) evaluation
//!
//! The paper's primary contribution: computing set-based CTP results
//! `g(S_1, …, S_m, F)` — all minimal trees connecting one node from
//! each seed set, traversing edges in both directions — with the
//! algorithm family BFT / BFT-M / BFT-AM / GAM / ESP / MoESP / LESP /
//! **MoLESP**, CTP filters pushed into the search, score functions, and
//! the comparison baselines (DPBF group-Steiner, path enumeration and
//! stitching).
//!
//! ```
//! use cs_core::{evaluate_ctp, Algorithm, Filters, QueueOrder, SeedSets};
//! use cs_graph::generate::star;
//!
//! let w = star(4, 2);
//! let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
//! let out = evaluate_ctp(&w.graph, &seeds, Algorithm::MoLesp,
//!                        Filters::none(), QueueOrder::SmallestFirst);
//! assert_eq!(out.results.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod baseline;
mod config;
pub mod delta;
pub mod explain;
pub mod parallel;
mod result;
pub mod score;
mod seedmask;
mod seeds;
pub mod tree;

pub use algo::{
    evaluate_ctp, evaluate_ctp_partitioned, evaluate_ctp_streaming, evaluate_ctp_with_policy,
    run_partitioned, stream_ctp, Algorithm, CtpStream, GamConfig,
};
pub use config::{CancelFlag, Filters, PriorityFn, QueueOrder, QueuePolicy};
pub use delta::{probe_delta, ProbeOutcome, DEFAULT_PROBE_BUDGET};
pub use result::{
    check_result_minimal, sat_of_nodes, ResultSet, ResultTree, SearchOutcome, SearchStats,
    WorkerStats,
};
pub use seedmask::{SeedMask, MAX_SEED_SETS};
pub use seeds::{SeedError, SeedSets, SeedSpec};
