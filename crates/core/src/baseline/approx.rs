//! A greedy approximate group-Steiner baseline — the "heuristics
//! without guarantees but which have performed well" class the paper's
//! introduction describes (and the spirit of STAR / progressive GSTP
//! search).
//!
//! Strategy: start from the seed of the first group; repeatedly attach
//! the not-yet-covered group whose closest seed is nearest to the
//! current tree (multi-source BFS from the tree's nodes), then prune
//! non-seed leaves. Runs in O(m · (|N| + |E|)); the result is a valid
//! connecting tree but may be up to ~2× the optimum (classic
//! shortest-path-heuristic behaviour).

use crate::seeds::{SeedSets, SeedSpec};
use cs_graph::fxhash::FxHashSet;
use cs_graph::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

/// A tree found by the greedy heuristic.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxTree {
    /// Sorted tree edges.
    pub edges: Vec<EdgeId>,
    /// Edge count (unit cost).
    pub cost: usize,
}

/// Runs the greedy heuristic; `directed` restricts the BFS like the
/// UNI filter. Returns `None` when some group is unreachable. `All`
/// seed sets are ignored (they are satisfied by any node).
pub fn greedy_gstp(g: &Graph, seeds: &SeedSets, directed: bool) -> Option<ApproxTree> {
    let groups: Vec<&Vec<NodeId>> = seeds
        .specs()
        .iter()
        .filter_map(|s| match s {
            SeedSpec::Set(v) => Some(v),
            SeedSpec::All => None,
        })
        .collect();
    if groups.is_empty() {
        return None;
    }

    // Tree state: node set + edge set.
    let mut tree_nodes: FxHashSet<NodeId> = FxHashSet::default();
    let mut tree_edges: FxHashSet<EdgeId> = FxHashSet::default();
    tree_nodes.insert(groups[0][0]);
    let mut covered = vec![false; groups.len()];
    covered[0] = true;
    // Groups already touched by the initial node.
    for (gi, grp) in groups.iter().enumerate() {
        if grp.contains(&groups[0][0]) {
            covered[gi] = true;
        }
    }

    while covered.iter().any(|&c| !c) {
        // Multi-source BFS from the current tree.
        let mut parent_edge: Vec<Option<EdgeId>> = vec![None; g.node_count()];
        let mut dist: Vec<u32> = vec![u32::MAX; g.node_count()];
        let mut queue = VecDeque::new();
        for &n in &tree_nodes {
            dist[n.index()] = 0;
            queue.push_back(n);
        }
        // BFS until the nearest seed of an uncovered group is reached.
        let mut hit: Option<(usize, NodeId)> = None;
        'bfs: while let Some(n) = queue.pop_front() {
            for (gi, grp) in groups.iter().enumerate() {
                if !covered[gi] && grp.contains(&n) {
                    hit = Some((gi, n));
                    break 'bfs;
                }
            }
            for a in g.adjacent(n) {
                if directed && !a.outgoing() {
                    continue;
                }
                if dist[a.other().index()] == u32::MAX {
                    dist[a.other().index()] = dist[n.index()] + 1;
                    parent_edge[a.other().index()] = Some(a.edge());
                    queue.push_back(a.other());
                }
            }
        }
        let (gi, mut at) = hit?;
        covered[gi] = true;
        // Walk the BFS parents back to the tree, adding the path.
        while !tree_nodes.contains(&at) {
            // cs-lint: allow(L002): `at` descends the BFS parent chain
            // from `hit`, and every visited node recorded its parent.
            let e = parent_edge[at.index()].expect("path to tree exists");
            tree_edges.insert(e);
            tree_nodes.insert(at);
            at = g.other_endpoint(e, at);
        }
        // Newly attached nodes may cover further groups for free.
        for (gj, grp) in groups.iter().enumerate() {
            if !covered[gj] && grp.iter().any(|s| tree_nodes.contains(s)) {
                covered[gj] = true;
            }
        }
    }

    // Prune non-seed leaves (keep the tree minimal-ish).
    let mut edges: Vec<EdgeId> = tree_edges.into_iter().collect();
    edges.sort_unstable();
    let (edges, _) = crate::algo::minimize(g, &edges, seeds);
    let mut edges = edges.into_vec();
    edges.sort_unstable();
    let cost = edges.len();
    Some(ApproxTree { edges, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::dpbf;
    use cs_graph::generate::{line, random_connected, star};
    use cs_graph::GraphBuilder;

    #[test]
    fn finds_line_tree() {
        let w = line(3, 2);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let t = greedy_gstp(&w.graph, &seeds, false).unwrap();
        assert_eq!(t.cost, w.graph.edge_count());
        assert!(crate::tree::is_tree(&w.graph, &t.edges));
    }

    #[test]
    fn finds_star_tree() {
        let w = star(5, 2);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let t = greedy_gstp(&w.graph, &seeds, false).unwrap();
        assert_eq!(t.cost, 10);
    }

    #[test]
    fn never_beats_dpbf_optimum() {
        for seed in 0..20u64 {
            let g = random_connected(15, 8, seed);
            let seeds = SeedSets::from_sets(vec![
                vec![cs_graph::NodeId(0)],
                vec![cs_graph::NodeId(7)],
                vec![cs_graph::NodeId(14)],
            ])
            .unwrap();
            let opt = dpbf(&g, &seeds, false).unwrap();
            let approx = greedy_gstp(&g, &seeds, false).unwrap();
            assert!(
                approx.cost >= opt.edges.len(),
                "seed {seed}: approx {} below optimum {}",
                approx.cost,
                opt.edges.len()
            );
            assert!(crate::tree::is_tree(&g, &approx.edges));
            // The greedy heuristic stays within a small factor here.
            assert!(approx.cost <= 3 * opt.edges.len().max(1));
        }
    }

    #[test]
    fn unreachable_group_returns_none() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        let d = b.add_node("d");
        b.add_edge(a, "r", c);
        let g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![d]]).unwrap();
        assert!(greedy_gstp(&g, &seeds, false).is_none());
    }

    #[test]
    fn directed_variant_respects_orientation() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let x = b.add_node("x");
        let c = b.add_node("c");
        b.add_edge(a, "r", x);
        b.add_edge(c, "r", x);
        let g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![c]]).unwrap();
        assert!(greedy_gstp(&g, &seeds, false).is_some());
        // Directed: from a we can reach x but never c.
        assert!(greedy_gstp(&g, &seeds, true).is_none());
    }
}
