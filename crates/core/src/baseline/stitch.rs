//! Path stitching (paper §2, "Difference wrt path-based semantics"):
//! computing an m=3 CTP by a three-way join of paths from a common root
//! to one node of each seed set.
//!
//! The paper explains why this is the wrong semantics — (i) each n-node
//! tree appears n times (one per internal root), requiring
//! deduplication, and (ii) joins of overlapping paths are not trees —
//! and Fig. 14 shows the blow-up. This module implements stitching
//! faithfully so both effects are measurable.

use crate::baseline::paths::{enumerate_paths, PathOptions};
use crate::result::{ResultSet, ResultTree};
use crate::seeds::SeedSets;
use cs_graph::{EdgeId, Graph, NodeId};

/// Outcome of a stitching run.
#[derive(Debug, Default)]
pub struct StitchOutcome {
    /// Raw join combinations produced (before any deduplication) —
    /// what a path-returning engine would hand back.
    pub raw_combinations: u64,
    /// Combinations rejected because the three paths overlap (their
    /// union is not a tree).
    pub non_tree: u64,
    /// Distinct minimal trees after deduplication + minimisation.
    pub deduped: ResultSet,
}

/// Stitches paths for an m-seed CTP (the paper discusses m = 3; any
/// m ≥ 2 works): for every candidate root `r`, joins one simple path
/// from `r` to a seed of each set, keeps unions that are trees, and
/// deduplicates by edge set.
pub fn stitch(g: &Graph, seeds: &SeedSets, opts: &PathOptions) -> StitchOutcome {
    let mut out = StitchOutcome::default();
    let m = seeds.m();
    let seed_lists: Vec<Vec<NodeId>> = (0..m)
        .map(|i| match &seeds.specs()[i] {
            crate::seeds::SeedSpec::Set(v) => v.clone(),
            crate::seeds::SeedSpec::All => Vec::new(),
        })
        .collect();
    if seed_lists.iter().any(Vec::is_empty) {
        return out; // stitching needs explicit seed sets
    }

    for r_idx in 0..g.node_count() {
        let r = NodeId::new(r_idx);
        // Paths from r to each set's seeds.
        let per_set: Vec<Vec<Vec<EdgeId>>> = seed_lists
            .iter()
            .map(|list| {
                let mut ps = Vec::new();
                for &s in list {
                    ps.extend(enumerate_paths(g, r, s, opts));
                }
                ps
            })
            .collect();
        if per_set.iter().any(Vec::is_empty) {
            continue;
        }
        // m-way cartesian join.
        let mut combo = vec![0usize; m];
        loop {
            let paths: Vec<&Vec<EdgeId>> = combo
                .iter()
                .enumerate()
                .map(|(i, &j)| &per_set[i][j])
                .collect();
            out.raw_combinations += 1;
            join_combo(g, seeds, &paths, &mut out);
            if opts.max_paths != 0 && out.raw_combinations >= opts.max_paths as u64 {
                return out;
            }
            // Advance the mixed-radix counter.
            let mut i = 0;
            loop {
                combo[i] += 1;
                if combo[i] < per_set[i].len() {
                    break;
                }
                combo[i] = 0;
                i += 1;
                if i == m {
                    break;
                }
            }
            if i == m {
                break;
            }
        }
    }
    out
}

fn join_combo(g: &Graph, seeds: &SeedSets, paths: &[&Vec<EdgeId>], out: &mut StitchOutcome) {
    // Union of edges; check the union forms a tree (paths may share
    // nodes or edges — then the join is not a tree, §2).
    let mut edges: Vec<EdgeId> = paths.iter().flat_map(|p| p.iter().copied()).collect();
    edges.sort_unstable();
    edges.dedup();
    if !crate::tree::is_tree(g, &edges) {
        out.non_tree += 1;
        return;
    }
    // Minimise (strip non-seed leaves) and check Def 2.8 condition (ii):
    // exactly one node per set.
    let (edges, nodes) = crate::algo::minimize(g, &edges, seeds);
    if edges.is_empty() {
        return;
    }
    let mut per_set = vec![0usize; seeds.m()];
    for &n in nodes.iter() {
        for i in seeds.membership(n).iter() {
            per_set[i] += 1;
        }
    }
    if per_set.iter().any(|&c| c != 1) {
        return;
    }
    let root = nodes[0];
    let r = ResultTree::from_tree(edges, nodes, root, seeds);
    out.deduped.insert(r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{evaluate_ctp, Algorithm};
    use crate::config::{Filters, QueueOrder};
    use cs_graph::generate::star;
    use cs_graph::GraphBuilder;

    #[test]
    fn stitch_finds_star_result_many_times() {
        let w = star(3, 2);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = stitch(&w.graph, &seeds, &PathOptions::undirected(6));
        // One distinct tree after dedup…
        assert_eq!(out.deduped.len(), 1);
        // …but many raw combinations (one per internal root at least).
        assert!(out.raw_combinations > 1, "raw = {}", out.raw_combinations);
    }

    #[test]
    fn stitch_agrees_with_molesp_when_paths_long_enough() {
        let w = star(3, 1);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let direct = evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        let stitched = stitch(&w.graph, &seeds, &PathOptions::undirected(4));
        assert_eq!(stitched.deduped.canonical(), direct.results.canonical());
    }

    #[test]
    fn overlapping_paths_rejected() {
        // a - x - b, a - x - c: stitching at root x works, but at root a
        // the paths to b and c share node x… they still form a tree
        // (a-x-b + a-x-c share edge a-x). The union IS a tree here; use
        // a genuine overlap: paths sharing an edge but forming a tree
        // are fine; require the non_tree counter to fire on a cycle.
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("A");
        let x = gb.add_node("x");
        let y = gb.add_node("y");
        let b = gb.add_node("B");
        let c = gb.add_node("C");
        gb.add_edge(a, "r", x);
        gb.add_edge(a, "r", y);
        gb.add_edge(x, "r", b);
        gb.add_edge(y, "r", b); // two routes a→b form a cycle
        gb.add_edge(x, "r", c);
        let g = gb.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![b], vec![c]]).unwrap();
        let out = stitch(&g, &seeds, &PathOptions::undirected(4));
        assert!(out.non_tree > 0, "cycle-forming joins must be rejected");
        assert!(!out.deduped.is_empty());
    }

    #[test]
    fn raw_count_exceeds_dedup_count() {
        let w = star(3, 2);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = stitch(&w.graph, &seeds, &PathOptions::undirected(8));
        assert!(out.raw_combinations as usize >= out.deduped.len());
    }

    #[test]
    fn cap_stops_early() {
        let w = star(3, 2);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let mut opts = PathOptions::undirected(8);
        opts.max_paths = 2;
        let out = stitch(&w.graph, &seeds, &opts);
        assert!(out.raw_combinations <= 2);
    }
}
