//! Comparison baselines (paper §5.2): the QGSTP-class single-result
//! group Steiner solver ([`dpbf::dpbf`]), the path-semantics systems
//! ([`paths`]), and path stitching ([`stitch::stitch`]).

pub mod approx;
pub mod dpbf;
pub mod paths;
pub mod stitch;

pub use approx::{greedy_gstp, ApproxTree};
pub use dpbf::{dpbf, SteinerTree};
pub use paths::{
    check_reachable, enumerate_paths, path_table, reachable_targets, PathOptions, PathTable,
};
pub use stitch::{stitch, StitchOutcome};
