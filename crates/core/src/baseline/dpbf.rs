//! DPBF — dynamic programming for the (group) Steiner tree (Ding et
//! al., ICDE 2007): the optimal-cost connected tree algorithm that
//! QGSTP and LANCET bootstrap from. Our Fig. 12 baseline (see DESIGN.md
//! §2): it returns exactly **one** least-cost tree, polynomial in |G|
//! for fixed m, which is the behavioural contract of the paper's QGSTP
//! comparison.
//!
//! States are pairs `(v, S)` — the cheapest tree rooted at `v` covering
//! group subset `S` — processed in increasing cost order (Dijkstra
//! style), with two transitions: *grow* along an edge, and *merge* two
//! trees at the same root with disjoint group sets.

use crate::seedmask::SeedMask;
use crate::seeds::SeedSets;
use cs_graph::fxhash::FxHashMap;
use cs_graph::{EdgeId, Graph, NodeId};
use std::collections::BinaryHeap;

/// How a DP state was reached (for tree reconstruction).
#[derive(Debug, Clone, Copy)]
enum Back {
    Seed,
    Grow(EdgeId, NodeId, SeedMask),
    Merge(SeedMask, SeedMask),
}

/// A least-cost group Steiner tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    /// The tree's edges.
    pub edges: Vec<EdgeId>,
    /// Total cost (1 per edge).
    pub cost: f64,
    /// The root from which the tree was assembled.
    pub root: NodeId,
}

#[derive(PartialEq)]
struct State {
    cost: f64,
    node: NodeId,
    mask: SeedMask,
}

impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
            .then_with(|| self.mask.cmp(&other.mask))
    }
}

/// Runs DPBF. `directed = true` restricts growth so the root reaches
/// all seeds along directed paths (the UNI semantics); `false` treats
/// edges as undirected (requirement R3).
///
/// Returns `None` if no connecting tree exists (or `m` = 0).
pub fn dpbf(g: &Graph, seeds: &SeedSets, directed: bool) -> Option<SteinerTree> {
    let m = seeds.m();
    let full = seeds.full();
    if m == 0 {
        return None;
    }
    // cost + backpointer per (node, mask).
    let mut best: FxHashMap<(NodeId, SeedMask), (f64, Back)> = FxHashMap::default();
    let mut done: cs_graph::fxhash::FxHashSet<(NodeId, SeedMask)> =
        cs_graph::fxhash::FxHashSet::default();
    let mut heap: BinaryHeap<State> = BinaryHeap::new();

    for s in seeds.all_seed_nodes() {
        let mask = seeds.membership(s);
        best.insert((s, mask), (0.0, Back::Seed));
        heap.push(State {
            cost: 0.0,
            node: s,
            mask,
        });
    }

    while let Some(State { cost, node, mask }) = heap.pop() {
        if !done.insert((node, mask)) {
            continue; // stale entry
        }
        if mask == full {
            return Some(reconstruct(g, &best, node, mask, cost));
        }

        // Grow: extend to a neighbour. For the directed variant the new
        // root must have a directed edge *to* the current root, so the
        // root keeps dominating all seeds.
        for a in g.adjacent(node) {
            if directed && a.outgoing() {
                continue;
            }
            if a.other() == node {
                continue; // self-loop is never useful
            }
            let ncost = cost + 1.0;
            let key = (a.other(), mask);
            if best.get(&key).is_none_or(|(c, _)| ncost < *c) {
                best.insert(key, (ncost, Back::Grow(a.edge(), node, mask)));
                heap.push(State {
                    cost: ncost,
                    node: a.other(),
                    mask,
                });
            }
        }

        // Merge: combine with any completed disjoint mask at this node.
        let partners: Vec<(SeedMask, f64)> = done
            .iter()
            .filter(|(n, pm)| *n == node && pm.disjoint(mask) && !pm.is_empty())
            .filter_map(|&(n, pm)| best.get(&(n, pm)).map(|(c, _)| (pm, *c)))
            .collect();
        for (pm, pc) in partners {
            let nmask = mask.union(pm);
            let ncost = cost + pc;
            let key = (node, nmask);
            if best.get(&key).is_none_or(|(c, _)| ncost < *c) {
                best.insert(key, (ncost, Back::Merge(mask, pm)));
                heap.push(State {
                    cost: ncost,
                    node,
                    mask: nmask,
                });
            }
        }
    }
    None
}

fn reconstruct(
    g: &Graph,
    best: &FxHashMap<(NodeId, SeedMask), (f64, Back)>,
    node: NodeId,
    mask: SeedMask,
    cost: f64,
) -> SteinerTree {
    let mut edges = Vec::new();
    let mut stack = vec![(node, mask)];
    while let Some((n, m)) = stack.pop() {
        match best.get(&(n, m)).map(|(_, b)| *b) {
            Some(Back::Seed) | None => {}
            Some(Back::Grow(e, prev, pm)) => {
                edges.push(e);
                stack.push((prev, pm));
            }
            Some(Back::Merge(m1, m2)) => {
                stack.push((n, m1));
                stack.push((n, m2));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let _ = g;
    SteinerTree {
        edges,
        cost,
        root: node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::generate::{line, star};
    use cs_graph::GraphBuilder;

    #[test]
    fn line_optimum() {
        let w = line(3, 2);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let t = dpbf(&w.graph, &seeds, false).expect("connected");
        // The whole line is the unique connecting tree.
        assert_eq!(t.edges.len(), w.graph.edge_count());
        assert_eq!(t.cost, w.graph.edge_count() as f64);
    }

    #[test]
    fn star_optimum() {
        let w = star(5, 3);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let t = dpbf(&w.graph, &seeds, false).expect("connected");
        assert_eq!(t.edges.len(), 15);
    }

    #[test]
    fn picks_shorter_of_two_routes() {
        // A --1-- x --1-- B  and  A --1-- y --1-- z --1-- B:
        // optimum = 2 edges via x.
        let mut b = GraphBuilder::new();
        let a = b.add_node("A");
        let x = b.add_node("x");
        let y = b.add_node("y");
        let z = b.add_node("z");
        let bb = b.add_node("B");
        let e0 = b.add_edge(a, "r", x);
        let e1 = b.add_edge(x, "r", bb);
        b.add_edge(a, "r", y);
        b.add_edge(y, "r", z);
        b.add_edge(z, "r", bb);
        let g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![bb]]).unwrap();
        let t = dpbf(&g, &seeds, false).unwrap();
        assert_eq!(t.edges, vec![e0, e1]);
        assert_eq!(t.cost, 2.0);
    }

    #[test]
    fn directed_respects_orientation() {
        // a -> x <- b: undirected connects in 2 edges; directed needs a
        // dominating root — none exists, so no result.
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let x = b.add_node("x");
        let bb = b.add_node("b");
        b.add_edge(a, "r", x);
        b.add_edge(bb, "r", x);
        let g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![bb]]).unwrap();
        assert!(dpbf(&g, &seeds, false).is_some());
        assert!(dpbf(&g, &seeds, true).is_none());

        // x -> a, x -> b: x dominates both; directed finds 2 edges.
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let x = b.add_node("x");
        let bb = b.add_node("b");
        b.add_edge(x, "r", a);
        b.add_edge(x, "r", bb);
        let g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![bb]]).unwrap();
        let t = dpbf(&g, &seeds, true).unwrap();
        assert_eq!(t.edges.len(), 2);
        assert_eq!(t.root, x);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        let c = b.add_node("c");
        let d = b.add_node("d");
        b.add_edge(a, "r", c);
        let g = b.freeze();
        let seeds = SeedSets::from_sets(vec![vec![a], vec![d]]).unwrap();
        assert!(dpbf(&g, &seeds, false).is_none());
    }

    #[test]
    fn matches_molesp_minimum() {
        // DPBF's optimum must equal the smallest MoLESP result.
        use crate::algo::{evaluate_ctp, Algorithm};
        use crate::config::{Filters, QueueOrder};
        let w = star(3, 2);
        let seeds = SeedSets::from_sets(w.seeds.clone()).unwrap();
        let out = evaluate_ctp(
            &w.graph,
            &seeds,
            Algorithm::MoLesp,
            Filters::none(),
            QueueOrder::SmallestFirst,
        );
        let min_size = out.results.trees().iter().map(|t| t.size()).min().unwrap();
        let t = dpbf(&w.graph, &seeds, false).unwrap();
        assert_eq!(t.edges.len(), min_size);
    }
}
