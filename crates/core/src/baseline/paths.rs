//! Path-based baselines standing in for the systems of §5.5 (see
//! DESIGN.md §2): each implements exactly the *semantics class* of the
//! system it replaces, over the same in-memory graph.
//!
//! | paper system        | here                                    |
//! |---------------------|-----------------------------------------|
//! | Virtuoso SPARQL/SQL | [`check_reachable`] — check-only, uni   |
//! | JEDI                | [`enumerate_paths`] directed, returns   |
//! | Neo4j (Cypher)      | [`enumerate_paths`] undirected, returns |
//! | Postgres recursive  | [`PathTable`] — semi-naive iteration    |

use cs_graph::fxhash::FxHashSet;
use cs_graph::{EdgeId, Graph, LabelId, NodeId};
use std::collections::VecDeque;

/// Options shared by the path baselines.
#[derive(Debug, Clone, Default)]
pub struct PathOptions {
    /// Traverse edges only in their direction (the SPARQL 1.1 property
    /// path restriction the paper calls out).
    pub directed: bool,
    /// Restrict traversal to these edge labels (property-path regex
    /// stand-in; `None` = any label).
    pub labels: Option<Vec<String>>,
    /// Maximum path length in edges.
    pub max_len: usize,
    /// Stop after this many paths (safety valve; 0 = unlimited).
    pub max_paths: usize,
}

impl PathOptions {
    /// Directed traversal with a length bound.
    pub fn directed(max_len: usize) -> Self {
        PathOptions {
            directed: true,
            labels: None,
            max_len,
            max_paths: 0,
        }
    }

    /// Undirected traversal with a length bound.
    pub fn undirected(max_len: usize) -> Self {
        PathOptions {
            directed: false,
            labels: None,
            max_len,
            max_paths: 0,
        }
    }

    fn label_set(&self, g: &Graph) -> Option<FxHashSet<LabelId>> {
        self.labels
            .as_ref()
            .map(|ls| ls.iter().filter_map(|l| g.label_id(l)).collect())
    }
}

/// Check-only reachability (Virtuoso-like): is there a path from `from`
/// to `to` under the options? Returns as soon as one is found — no
/// paths are materialised, which is why this class is fastest in
/// Figs. 13/14 but answers a weaker question.
pub fn check_reachable(g: &Graph, from: NodeId, to: NodeId, opts: &PathOptions) -> bool {
    if from == to {
        return true;
    }
    let labels = opts.label_set(g);
    let mut seen = vec![false; g.node_count()];
    seen[from.index()] = true;
    let mut queue = VecDeque::from([(from, 0usize)]);
    while let Some((n, d)) = queue.pop_front() {
        if d >= opts.max_len {
            continue;
        }
        for a in g.adjacent(n) {
            if opts.directed && !a.outgoing() {
                continue;
            }
            if let Some(ls) = &labels {
                if !ls.contains(&g.edge(a.edge()).label) {
                    continue;
                }
            }
            if a.other() == to {
                return true;
            }
            if !seen[a.other().index()] {
                seen[a.other().index()] = true;
                queue.push_back((a.other(), d + 1));
            }
        }
    }
    false
}

/// Bounded BFS from `from` counting how many of `targets` are
/// reachable — the shared-closure form of check-only evaluation (one
/// traversal answers reachability to *all* targets, as a property-path
/// engine would).
pub fn reachable_targets(
    g: &Graph,
    from: NodeId,
    targets: &std::collections::HashSet<NodeId>,
    opts: &PathOptions,
) -> usize {
    let labels = opts.label_set(g);
    let mut seen = vec![false; g.node_count()];
    seen[from.index()] = true;
    let mut hit = usize::from(targets.contains(&from));
    let mut queue = VecDeque::from([(from, 0usize)]);
    while let Some((n, d)) = queue.pop_front() {
        if d >= opts.max_len {
            continue;
        }
        for a in g.adjacent(n) {
            if opts.directed && !a.outgoing() {
                continue;
            }
            if let Some(ls) = &labels {
                if !ls.contains(&g.edge(a.edge()).label) {
                    continue;
                }
            }
            if !seen[a.other().index()] {
                seen[a.other().index()] = true;
                if targets.contains(&a.other()) {
                    hit += 1;
                }
                queue.push_back((a.other(), d + 1));
            }
        }
    }
    hit
}

/// Enumerates all **simple** paths from `from` to `to` (JEDI-like when
/// directed, Cypher-like when undirected). Each path is its edge
/// sequence.
pub fn enumerate_paths(
    g: &Graph,
    from: NodeId,
    to: NodeId,
    opts: &PathOptions,
) -> Vec<Vec<EdgeId>> {
    let labels = opts.label_set(g);
    let mut out = Vec::new();
    let mut on_path = vec![false; g.node_count()];
    let mut path = Vec::new();
    on_path[from.index()] = true;
    dfs(
        g,
        from,
        to,
        opts,
        &labels,
        &mut on_path,
        &mut path,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &Graph,
    cur: NodeId,
    to: NodeId,
    opts: &PathOptions,
    labels: &Option<FxHashSet<LabelId>>,
    on_path: &mut [bool],
    path: &mut Vec<EdgeId>,
    out: &mut Vec<Vec<EdgeId>>,
) {
    if opts.max_paths != 0 && out.len() >= opts.max_paths {
        return;
    }
    if cur == to {
        out.push(path.clone());
        return;
    }
    if path.len() >= opts.max_len {
        return;
    }
    for a in g.adjacent(cur) {
        if opts.directed && !a.outgoing() {
            continue;
        }
        if on_path[a.other().index()] {
            continue;
        }
        if let Some(ls) = labels {
            if !ls.contains(&g.edge(a.edge()).label) {
                continue;
            }
        }
        on_path[a.other().index()] = true;
        path.push(a.edge());
        dfs(g, a.other(), to, opts, labels, on_path, path, out);
        path.pop();
        on_path[a.other().index()] = false;
    }
}

/// A materialised path relation built by semi-naive iteration — the
/// recursive-SQL baseline. Each round extends the frontier by one edge
/// (`path(s, x) ∧ edge(x, y) → path(s, y)`), with the cycle check
/// recursive SQL implements via a visited-node array.
#[derive(Debug, Default)]
pub struct PathTable {
    /// All discovered paths as `(start, end, edges)`.
    pub paths: Vec<(NodeId, NodeId, Vec<EdgeId>)>,
    /// Number of semi-naive rounds executed.
    pub rounds: usize,
}

/// Builds the path relation from every node of `sources`, up to
/// `opts.max_len`, and returns the paths ending in `targets`.
pub fn path_table(
    g: &Graph,
    sources: &[NodeId],
    targets: &[NodeId],
    opts: &PathOptions,
) -> PathTable {
    let labels = opts.label_set(g);
    let target_set: FxHashSet<NodeId> = targets.iter().copied().collect();
    let mut result = PathTable::default();

    // Delta = paths added last round, as (start, end, node-set, edges).
    let mut delta: Vec<(NodeId, NodeId, FxHashSet<NodeId>, Vec<EdgeId>)> = sources
        .iter()
        .map(|&s| (s, s, FxHashSet::from_iter([s]), Vec::new()))
        .collect();

    for round in 0..opts.max_len {
        let mut next = Vec::new();
        for (s, e, nodes, edges) in &delta {
            for a in g.adjacent(*e) {
                if opts.directed && !a.outgoing() {
                    continue;
                }
                if let Some(ls) = &labels {
                    if !ls.contains(&g.edge(a.edge()).label) {
                        continue;
                    }
                }
                if nodes.contains(&a.other()) {
                    continue; // simple paths only
                }
                let mut nn = nodes.clone();
                nn.insert(a.other());
                let mut ne = edges.clone();
                ne.push(a.edge());
                if target_set.contains(&a.other()) {
                    result.paths.push((*s, a.other(), ne.clone()));
                    if opts.max_paths != 0 && result.paths.len() >= opts.max_paths {
                        result.rounds = round + 1;
                        return result;
                    }
                }
                next.push((*s, a.other(), nn, ne));
            }
        }
        result.rounds = round + 1;
        if next.is_empty() {
            break;
        }
        delta = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::generate::chain;
    use cs_graph::GraphBuilder;

    fn diamond() -> (cs_graph::Graph, NodeId, NodeId) {
        // a -> x -> b and a -> y -> b; plus a back-edge b -> a.
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a");
        let x = gb.add_node("x");
        let y = gb.add_node("y");
        let b = gb.add_node("b");
        gb.add_edge(a, "p", x);
        gb.add_edge(x, "p", b);
        gb.add_edge(a, "q", y);
        gb.add_edge(y, "q", b);
        gb.add_edge(b, "back", a);
        (gb.freeze(), a, b)
    }

    #[test]
    fn reachability_directed_vs_undirected() {
        let (g, a, b) = diamond();
        assert!(check_reachable(&g, a, b, &PathOptions::directed(5)));
        // Length bound matters.
        assert!(!check_reachable(&g, a, b, &PathOptions::directed(1)));
        assert!(check_reachable(&g, b, a, &PathOptions::directed(5))); // via back-edge
        assert!(check_reachable(&g, b, a, &PathOptions::undirected(2)));
        assert!(check_reachable(&g, a, a, &PathOptions::directed(0)));
    }

    #[test]
    fn label_constrained_reachability() {
        let (g, a, b) = diamond();
        let mut opts = PathOptions::directed(5);
        opts.labels = Some(vec!["p".into()]);
        assert!(check_reachable(&g, a, b, &opts));
        opts.labels = Some(vec!["back".into()]);
        assert!(!check_reachable(&g, a, b, &opts));
    }

    #[test]
    fn enumerate_directed_paths() {
        let (g, a, b) = diamond();
        let paths = enumerate_paths(&g, a, b, &PathOptions::directed(5));
        assert_eq!(paths.len(), 2); // via x and via y
        let undirected = enumerate_paths(&g, a, b, &PathOptions::undirected(5));
        assert_eq!(undirected.len(), 3); // + the back edge traversed against direction
    }

    #[test]
    fn enumerate_respects_caps() {
        let (g, a, b) = diamond();
        let mut opts = PathOptions::directed(5);
        opts.max_paths = 1;
        assert_eq!(enumerate_paths(&g, a, b, &opts).len(), 1);
        let short = enumerate_paths(&g, a, b, &PathOptions::directed(1));
        assert!(short.is_empty());
    }

    #[test]
    fn chain_path_counts() {
        // The Figure 2 chain has 2^N directed paths end-to-end.
        let w = chain(5);
        let paths = enumerate_paths(
            &w.graph,
            w.seeds[0][0],
            w.seeds[1][0],
            &PathOptions::directed(10),
        );
        assert_eq!(paths.len(), 32);
    }

    #[test]
    fn path_table_matches_enumeration() {
        let (g, a, b) = diamond();
        let pt = path_table(&g, &[a], &[b], &PathOptions::directed(5));
        let direct = enumerate_paths(&g, a, b, &PathOptions::directed(5));
        assert_eq!(pt.paths.len(), direct.len());
        assert!(pt.rounds >= 2);
        for (s, e, _) in &pt.paths {
            assert_eq!((*s, *e), (a, b));
        }
    }

    #[test]
    fn path_table_multi_source() {
        let (g, a, b) = diamond();
        let x = g.node_by_label("x").unwrap();
        let pt = path_table(&g, &[a, x], &[b], &PathOptions::directed(5));
        // Paths from a (2) plus from x (1).
        assert_eq!(pt.paths.len(), 3);
    }
}

#[cfg(test)]
mod reachable_targets_tests {
    use super::*;
    use cs_graph::GraphBuilder;
    use std::collections::HashSet;

    #[test]
    fn counts_reachable_subset() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node("a");
        let x = gb.add_node("x");
        let b = gb.add_node("b");
        let c = gb.add_node("c");
        gb.add_edge(a, "r", x);
        gb.add_edge(x, "r", b);
        gb.add_edge(c, "r", x); // c unreachable FROM a (directed)
        let g = gb.freeze();
        let targets: HashSet<_> = [b, c].into_iter().collect();
        assert_eq!(
            reachable_targets(&g, a, &targets, &PathOptions::directed(5)),
            1
        );
        assert_eq!(
            reachable_targets(&g, a, &targets, &PathOptions::undirected(5)),
            2
        );
        // Source in targets counts immediately.
        let self_t: HashSet<_> = [a].into_iter().collect();
        assert_eq!(
            reachable_targets(&g, a, &self_t, &PathOptions::directed(0)),
            1
        );
    }
}
