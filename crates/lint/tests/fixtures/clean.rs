// Fixture: rule-relevant keywords in every literal position the lexer
// must understand — zero violations expected.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn literals() -> String {
    let plain = "unsafe { no_safety() } // not code";
    let raw = r#"x.unwrap(); y.expect("msg"); panic!("nope")"#;
    let deep = r##"Ordering::Relaxed inside r##-string: "# still in"##;
    let bytes = b"extern \"C\" { }";
    let ch = 'u';
    let quote = '\'';
    let lifetime: &'static str = "thread::spawn";
    /* block comment: unsafe, unwrap(), Ordering::SeqCst
       /* nested: panic!("still a comment") */
       extern "C" — still a comment */
    format!("{plain}{raw}{deep}{bytes:?}{ch}{quote}{lifetime}")
}

// SAFETY-adjacent but safe: a justified ordering and a typed error.
pub fn counter(c: &AtomicU64) -> u64 {
    // ORDERING: monotonic statistics counter; readers tolerate lag.
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn checked(v: &[u32]) -> Result<u32, &'static str> {
    v.first().copied().ok_or("empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
        std::thread::spawn(|| {}).join().unwrap();
    }
}
