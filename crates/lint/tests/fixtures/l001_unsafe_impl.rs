// Fixture: each unsafe impl needs its own SAFETY comment; the second
// one here has none and must trip L001 only.

pub struct Handle(*const u8);

// SAFETY: the pointee is immutable for the handle's whole lifetime.
unsafe impl Send for Handle {}
unsafe impl Sync for Handle {}
