// Fixture: unwrap, expect, and panic! in library code — three L002
// violations, nothing else.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("needs two elements")
}

pub fn boom() {
    panic!("library code must not panic");
}
