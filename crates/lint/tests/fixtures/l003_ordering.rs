// Fixture: Relaxed and SeqCst without ORDERING justifications — two
// L003 violations; the justified Relaxed load is clean.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn gate(c: &AtomicU64) -> u64 {
    c.load(Ordering::SeqCst)
}

pub fn fine(c: &AtomicU64) -> u64 {
    // ORDERING: statistics counter; no other memory depends on it.
    c.load(Ordering::Relaxed)
}
