// Fixture: an unsafe block with no SAFETY comment must trip L001 only.

pub fn reinterpret(words: &[u32]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 4) }
}
