// Fixture: a suppression marker with no reason is itself an L002
// violation.

pub fn first(v: &[u32]) -> u32 {
    // cs-lint: allow(L002)
    *v.first().unwrap()
}
