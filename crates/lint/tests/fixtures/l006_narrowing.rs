// Fixture: linted as if it were crates/graph/src/binfmt.rs — the two
// narrowing casts trip L006; the widening and pointer casts are clean.

pub fn decode_len(len: u64) -> u32 {
    len as u32
}

pub fn wire_count(n: usize) -> u16 {
    n as u16
}

pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn pointer(p: *const u8) -> *const u32 {
    p as *const u32
}
