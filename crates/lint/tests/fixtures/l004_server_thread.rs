// Fixture: the cs-server allowlist entry is `server.rs` alone, not the
// whole crate — a scheduler (or client, proto, …) file spawning its own
// worker trips L004 even inside crates/server. One violation.

pub fn sneak_a_worker_past_the_scheduler() {
    std::thread::spawn(|| {
        // A detached worker here would bypass admission control.
    });
}
