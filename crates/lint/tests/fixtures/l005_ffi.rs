// Fixture: an extern "C" declaration outside cs_graph::storage — one
// L005 violation.

extern "C" {
    pub fn getpid() -> i32;
}
