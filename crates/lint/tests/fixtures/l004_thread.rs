// Fixture: ad-hoc threading outside the scheduler modules — two L004
// violations (spawn and scope).

pub fn adhoc() {
    std::thread::spawn(|| {});
    std::thread::scope(|_s| {});
}
