//! The cs-lint self-test: every known-bad fixture must trip exactly
//! its own rule (correct rule id, expected count, no cross-talk from
//! other rules), the clean fixture must trip nothing, and the real
//! workspace must be violation-free.

use cs_lint::rules::{lint_source, Diagnostic};
use std::path::Path;

/// Runs a fixture under the given workspace-relative identity (the
/// path decides rule scopes: L006 only fires in the codec files, L002
/// only in library code).
fn run(as_path: &str, fixture: &str) -> Vec<Diagnostic> {
    lint_source(as_path, fixture)
}

/// Asserts that `fixture`, linted as `as_path`, yields exactly `count`
/// violations, all of rule `rule`.
fn assert_trips(as_path: &str, fixture: &str, rule: &str, count: usize) {
    let diags = run(as_path, fixture);
    assert_eq!(
        diags.len(),
        count,
        "expected {count}×{rule}, got: {diags:#?}"
    );
    for d in &diags {
        assert_eq!(d.rule, rule, "unexpected rule in {diags:#?}");
    }
}

#[test]
fn l001_unsafe_block_fixture() {
    assert_trips(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/l001_unsafe_block.rs"),
        "L001",
        1,
    );
}

#[test]
fn l001_unsafe_impl_fixture() {
    // The first impl is SAFETY-commented; only the second trips.
    let src = include_str!("fixtures/l001_unsafe_impl.rs");
    let diags = run("crates/fixture/src/lib.rs", src);
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, "L001");
    let line = diags[0].line as usize;
    assert!(
        src.lines().nth(line - 1).unwrap_or("").contains("Sync"),
        "the un-commented Sync impl must be the one flagged"
    );
}

#[test]
fn l002_panics_fixture() {
    assert_trips(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/l002_panics.rs"),
        "L002",
        3,
    );
}

#[test]
fn l002_suppression_without_reason_fixture() {
    let diags = run(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/l002_suppression_without_reason.rs"),
    );
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].rule, "L002");
    assert!(
        diags[0].msg.contains("missing its reason"),
        "{}",
        diags[0].msg
    );
}

#[test]
fn l003_ordering_fixture() {
    assert_trips(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/l003_ordering.rs"),
        "L003",
        2,
    );
}

#[test]
fn l004_thread_fixture() {
    assert_trips(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/l004_thread.rs"),
        "L004",
        2,
    );
}

#[test]
fn l004_server_thread_fixture() {
    // The allowlist is file-granular inside crates/server: only
    // server.rs may thread; every sibling module still trips.
    let src = include_str!("fixtures/l004_server_thread.rs");
    assert_trips("crates/server/src/scheduler.rs", src, "L004", 1);
    assert_trips("crates/server/src/client.rs", src, "L004", 1);
    assert!(run("crates/server/src/server.rs", src).is_empty());
}

#[test]
fn l005_ffi_fixture() {
    assert_trips(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/l005_ffi.rs"),
        "L005",
        1,
    );
}

#[test]
fn l006_narrowing_fixture() {
    // Same content, two identities: in the codec file it trips, in any
    // other library file L006 is out of scope.
    let src = include_str!("fixtures/l006_narrowing.rs");
    assert_trips("crates/graph/src/binfmt.rs", src, "L006", 2);
    assert!(run("crates/fixture/src/lib.rs", src).is_empty());
}

#[test]
fn clean_fixture_is_clean() {
    let diags = run(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/clean.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn fixtures_expectations_cover_every_fixture_file() {
    // Guard against fixtures rotting unasserted: every file in
    // tests/fixtures/ must be include_str!'d by this suite.
    let asserted = [
        "l001_unsafe_block.rs",
        "l001_unsafe_impl.rs",
        "l002_panics.rs",
        "l002_suppression_without_reason.rs",
        "l003_ordering.rs",
        "l004_server_thread.rs",
        "l004_thread.rs",
        "l005_ffi.rs",
        "l006_narrowing.rs",
        "clean.rs",
    ];
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = asserted.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(on_disk, expected);
}

/// The acceptance gate: the real workspace is lint-clean. This is the
/// same walk `cargo run -p cs-lint` does, so tier-1 `cargo test` fails
/// the moment a violation lands.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let (files, diags) = cs_lint::lint_workspace(root).expect("walk workspace");
    assert!(files > 40, "expected the full workspace, saw {files} files");
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "workspace has {} cs-lint violations:\n{}",
        diags.len(),
        rendered.join("\n")
    );
}
