//! The `cs-lint` binary: lints the workspace and exits nonzero on any
//! violation. See the crate docs of `cs_lint` for the rules.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cs-lint [--root DIR] [--quiet] [--rules]
  --root DIR   workspace root to lint (default: current directory)
  --quiet      print violations only, no summary line
  --rules      print the rule table and exit";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("cs-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--quiet" | "-q" => quiet = true,
            "--rules" => {
                for (id, summary) in cs_lint::rules::RULES {
                    println!("{id}  {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cs-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "cs-lint: {} does not look like the workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    match cs_lint::lint_workspace(&root) {
        Ok((files, diags)) => {
            for d in &diags {
                println!("{d}");
            }
            if !quiet {
                println!(
                    "cs-lint: {} file{} checked, {} violation{}",
                    files,
                    if files == 1 { "" } else { "s" },
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" },
                );
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("cs-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
