//! A minimal Rust lexer, sufficient for cs-lint's rules.
//!
//! The rules in [`crate::rules`] pattern-match identifier and
//! punctuation tokens, so the one job of this lexer is to be **exact
//! about boundaries**: an `unsafe` inside a string literal, a `//`
//! inside a string, a `Relaxed` inside a comment must never produce an
//! identifier token. It therefore handles, precisely:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * plain strings with escapes, byte strings, and raw (byte) strings
//!   at any `#` depth (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * char and byte-char literals (`'a'`, `'\''`, `b'\n'`) versus
//!   lifetimes (`'a`, `'static`, `'_`),
//! * raw identifiers (`r#type` is an identifier token `r#type`, not a
//!   raw-string opener — and never equal to the keyword `type`).
//!
//! Numeric literals are tokenised loosely (one token per literal, exact
//! shape unchecked) — no rule inspects them. The lexer never fails: any
//! unterminated literal or comment simply ends at end of input, which
//! is the right behaviour for a linter that must not panic on the code
//! it reads.

/// The kind of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (including raw identifiers, kept with
    /// their `r#` prefix so they never equal a keyword).
    Ident,
    /// `// …` comment, text up to (not including) the newline.
    LineComment,
    /// `/* … */` comment, nesting-aware.
    BlockComment,
    /// String or byte-string literal, delimiters included.
    Str,
    /// Raw string or raw byte-string literal, delimiters included.
    RawStr,
    /// Char or byte-char literal, delimiters included.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`), quote included.
    Lifetime,
    /// Numeric literal (loosely tokenised).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: kind, verbatim text, and the 1-based source line
/// its first character sits on.
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: Kind,
    /// The token's verbatim source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }

    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// True if this is the single punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Tokenises `src`. Whitespace is skipped; everything else, comments
/// included, becomes a token.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    };
    lx.run();
    lx.out
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    /// Consumes one char, tracking the line counter.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: Kind, start: usize, line: u32) {
        let text: String = self.chars[start..self.i].iter().collect();
        self.out.push(Token { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            let start = self.i;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(start, line),
                '/' if self.peek(1) == Some('*') => self.block_comment(start, line),
                '"' => {
                    self.string(start, line);
                }
                'b' | 'r' if self.literal_prefix(start, line) => {}
                _ if is_ident_start(c) => self.ident(start, line),
                '\'' => self.quote(start, line),
                _ if c.is_ascii_digit() => self.number(start, line),
                _ => {
                    self.bump();
                    self.push(Kind::Punct, start, line);
                }
            }
        }
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.push(Kind::LineComment, start, line);
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: end at EOF
            }
        }
        self.push(Kind::BlockComment, start, line);
    }

    /// Handles the `b`/`r` literal prefixes: `b"…"`, `b'…'`, `r"…"`,
    /// `r#"…"#`, `br##"…"##`, and the raw-identifier prefix `r#ident`.
    /// Returns false if the lookahead is a plain identifier starting
    /// with `b`/`r` (the caller then lexes it as an identifier).
    fn literal_prefix(&mut self, start: usize, line: u32) -> bool {
        let c = self.peek(0);
        let next = self.peek(1);
        match (c, next) {
            (Some('b'), Some('"')) => {
                self.bump();
                self.string(start, line);
                true
            }
            (Some('b'), Some('\'')) => {
                self.bump();
                self.bump();
                self.char_body();
                self.push(Kind::Char, start, line);
                true
            }
            (Some('b'), Some('r')) => self.raw_string_from(2, start, line),
            (Some('r'), Some('"')) | (Some('r'), Some('#')) => {
                // Distinguish r"…" / r#"…"# from the raw identifier
                // r#ident: after the hashes a raw string needs a quote.
                let mut k = 1;
                while self.peek(k) == Some('#') {
                    k += 1;
                }
                if self.peek(k) == Some('"') {
                    self.raw_string_from(1, start, line)
                } else if k == 2 && self.peek(2).is_some_and(is_ident_start) {
                    // r#ident — one hash then an identifier.
                    self.bump();
                    self.bump();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(Kind::Ident, start, line);
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Lexes a raw (byte) string whose `r` sits `prefix_len - 1` chars
    /// after `start` (1 for `r…`, 2 for `br…`). Returns false if the
    /// lookahead is not actually a raw string.
    fn raw_string_from(&mut self, prefix_len: usize, start: usize, line: u32) -> bool {
        let mut k = prefix_len;
        let mut hashes = 0usize;
        while self.peek(k) == Some('#') {
            k += 1;
            hashes += 1;
        }
        if self.peek(k) != Some('"') {
            return false;
        }
        for _ in 0..=k {
            self.bump(); // prefix, hashes, opening quote
        }
        // Scan for `"` followed by `hashes` hashes.
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for h in 0..hashes {
                    if self.peek(h) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Kind::RawStr, start, line);
        true
    }

    /// Lexes a (byte) string body; the cursor is on the opening quote.
    fn string(&mut self, start: usize, line: u32) {
        self.bump(); // opening '"'
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped char ('"', '\\', 'n', …)
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(Kind::Str, start, line);
    }

    /// The body of a char literal after the opening quote was consumed.
    fn char_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    /// A `'`: lifetime or char literal. `'x'` (any single possibly
    /// escaped char, closing quote) is a char; `'ident` without a
    /// closing quote right after one ident char is a lifetime.
    fn quote(&mut self, start: usize, line: u32) {
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let lifetime = match c1 {
            Some(c) if is_ident_start(c) => c2 != Some('\''),
            _ => false,
        };
        if lifetime {
            self.bump(); // '\''
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            self.push(Kind::Lifetime, start, line);
        } else {
            self.bump(); // '\''
            self.char_body();
            self.push(Kind::Char, start, line);
        }
    }

    fn ident(&mut self, start: usize, line: u32) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.push(Kind::Ident, start, line);
    }

    /// Loose numeric literal: digits, alphanumerics, `_`, and `.` when
    /// followed by a digit (so `0..n` stays three tokens).
    fn number(&mut self, start: usize, line: u32) {
        self.bump();
        while let Some(c) = self.peek(0) {
            let dot = c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if !is_ident_continue(c) && !dot {
                break;
            }
            self.bump();
        }
        self.push(Kind::Num, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    fn kinds(src: &str) -> Vec<Kind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn unsafe_in_string_is_not_an_ident() {
        assert_eq!(idents(r#"let s = "unsafe { }";"#), vec!["let", "s"]);
    }

    #[test]
    fn line_comment_marker_inside_string() {
        // The `//` sits inside a string literal: everything after it is
        // still code.
        let toks = lex(r#"let url = "https://x"; panic!()"#);
        assert!(toks.iter().any(|t| t.is_ident("panic")));
        assert!(!toks.iter().any(|t| t.is_comment()));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_keywords() {
        let src = r##"let s = r#"she said "unsafe" // not a comment"#; done"##;
        assert_eq!(idents(src), vec!["let", "s", "done"]);
        let raw: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == Kind::RawStr)
            .collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].text.contains("not a comment"));
    }

    #[test]
    fn raw_string_no_hash_and_deep_hash() {
        assert_eq!(idents(r#"r"unsafe" x"#), vec!["x"]);
        let src = "r##\"quote \"# still inside\"## y";
        assert_eq!(idents(src), vec!["y"]);
        let src = "br#\"bytes \"unsafe\" here\"# z";
        assert_eq!(idents(src), vec!["z"]);
    }

    #[test]
    fn raw_identifier_is_not_the_keyword() {
        let toks = lex("let r#unsafe = 1;");
        assert!(toks.iter().any(|t| t.is_ident("r#unsafe")));
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment */ code";
        assert_eq!(idents(src), vec!["code"]);
        let toks = lex(src);
        assert_eq!(toks[0].kind, Kind::BlockComment);
        assert!(toks[0].text.contains("inner unsafe"));
    }

    #[test]
    fn unterminated_block_comment_ends_at_eof() {
        let toks = lex("code /* dangling unsafe");
        assert_eq!(idents("code /* dangling unsafe"), vec!["code"]);
        assert_eq!(toks.last().map(|t| t.kind), Some(Kind::BlockComment));
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        // 'a' is a char; 'a in a generic position is a lifetime.
        let toks = lex("let c = 'a'; fn f<'a>(x: &'a str) {} let q = '\\''; let n = '\\n';");
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Char).collect();
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Lifetime).collect();
        assert_eq!(chars.len(), 3, "{chars:?}");
        assert_eq!(lifetimes.len(), 2, "{lifetimes:?}");
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn quote_heavy_char_literals() {
        // A char literal holding a quote, and a byte char.
        let toks = lex(r"let a = '\''; let b = b'x'; let c = '_';");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Char).count(), 3);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let toks = lex("&'static str; &'_ i32");
        let lt: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lt, vec!["'static", "'_"]);
    }

    #[test]
    fn line_numbers_track_every_literal_shape() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e\nr#\"x\ny\"# f";
        let find = |name: &str| {
            lex(src)
                .iter()
                .find(|t| t.is_ident(name))
                .map(|t| t.line)
                .unwrap_or(0)
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("e"), 5);
        assert_eq!(find("f"), 7);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let k = kinds("0..10");
        assert_eq!(
            k,
            vec![Kind::Num, Kind::Punct, Kind::Punct, Kind::Num],
            "range bounds stay separate"
        );
        assert_eq!(idents("1.5f64.to_bits()"), vec!["to_bits"]);
        assert_eq!(kinds("0xFF_u32"), vec![Kind::Num]);
    }

    #[test]
    fn byte_string_and_b_identifiers() {
        assert_eq!(
            idents(r#"b"unsafe" banana br br2"#),
            vec!["banana", "br", "br2"]
        );
    }
}
