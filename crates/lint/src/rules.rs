//! The project rules cs-lint enforces, pattern-matched over the token
//! stream of [`crate::lexer`].
//!
//! | Rule | Enforces |
//! |------|----------|
//! | L001 | every `unsafe` block/fn/impl is preceded by a `// SAFETY:` comment |
//! | L002 | no `.unwrap()` / `.expect()` / `panic!` in library code |
//! | L003 | every `Ordering::Relaxed` / `Ordering::SeqCst` carries an `// ORDERING:` justification |
//! | L004 | `thread::spawn` / `thread::scope` only inside `cs_core::parallel` / `algo::partition` / `cs_server::server` |
//! | L005 | `extern "C"` FFI confined to `cs_graph::storage` |
//! | L006 | no narrowing `as` casts (`as u8/u16/u32/i8/i16/i32`) in `binfmt.rs` / `storage.rs` |
//!
//! **Exemptions.** Test files (`tests/`), bench files (`benches/` and
//! the whole `crates/bench` harness crate), examples, binaries
//! (`src/bin/`, `src/main.rs`), and `#[cfg(test)]` modules are exempt
//! from L002 and L004; L001/L003/L005 apply everywhere (an unjustified
//! `unsafe` is as wrong in a test as in a library), and L006 applies to
//! the non-test code of its two target files.
//!
//! **Suppressions.** Any rule can be silenced for one line with an
//! inline comment on that line or the line directly above:
//!
//! ```text
//! // cs-lint: allow(L002): lock poisoning means a sibling worker panicked
//! ```
//!
//! The reason after the second `:` is mandatory — a suppression without
//! one is itself reported under the suppressed rule's id.

use crate::lexer::{lex, Kind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// Rule ids and their one-line summaries, in id order.
pub const RULES: &[(&str, &str)] = &[
    ("L001", "`unsafe` requires a preceding `// SAFETY:` comment"),
    (
        "L002",
        "no `.unwrap()` / `.expect()` / `panic!` in library code",
    ),
    (
        "L003",
        "`Ordering::Relaxed`/`Ordering::SeqCst` requires an `// ORDERING:` justification",
    ),
    (
        "L004",
        "`thread::spawn`/`thread::scope` only in cs_core::parallel / algo::partition / cs_server::server",
    ),
    ("L005", "`extern \"C\"` FFI only in cs_graph::storage"),
    (
        "L006",
        "no narrowing `as` casts in binfmt.rs/storage.rs decode paths — use `try_into`",
    ),
];

/// Files allowed to spawn or scope threads (L004). The server crate's
/// accept loop, connection readers, and executor pool all live in its
/// `server.rs` so the threading surface stays one file wide there too.
const THREAD_ALLOWED: &[&str] = &[
    "crates/core/src/parallel.rs",
    "crates/core/src/algo/partition.rs",
    "crates/server/src/server.rs",
];

/// Files allowed to declare `extern "C"` items (L005).
const FFI_ALLOWED: &[&str] = &["crates/graph/src/storage.rs"];

/// Files whose decode paths must not narrow with `as` (L006).
const NO_NARROWING: &[&str] = &["crates/graph/src/binfmt.rs", "crates/graph/src/storage.rs"];

/// Integer types an `as` cast may narrow into (L006). `usize`/`u64`
/// targets are widening from every wire-width type on the supported
/// 64-bit hosts, so they are not in the set.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the violation.
    pub line: u32,
    /// The rule id (`"L001"` … `"L006"`).
    pub rule: &'static str,
    /// Human-readable description of this violation.
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// How a file's path classifies it for the rule exemptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — all rules apply.
    Lib,
    /// A binary target (`src/bin/`, `src/main.rs`).
    Bin,
    /// Integration-test code (`tests/`).
    Test,
    /// Bench code (`benches/`, or anything in the `crates/bench` harness).
    Bench,
    /// Example code (`examples/`).
    Example,
}

impl FileKind {
    /// Panics and ad-hoc threads are acceptable outside library code.
    fn panics_allowed(self) -> bool {
        !matches!(self, FileKind::Lib)
    }
}

/// Classifies a workspace-relative path.
pub fn classify(rel_path: &str) -> FileKind {
    let p = rel_path.replace('\\', "/");
    let has = |seg: &str| p.contains(&format!("/{seg}/")) || p.starts_with(&format!("{seg}/"));
    if p.starts_with("crates/bench/") {
        FileKind::Bench
    } else if has("tests") {
        FileKind::Test
    } else if has("benches") {
        FileKind::Bench
    } else if has("examples") {
        FileKind::Example
    } else if p.contains("/src/bin/")
        || p.starts_with("src/bin/")
        || p.ends_with("/src/main.rs")
        || p == "src/main.rs"
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Lints one file's source. `rel_path` is the workspace-relative path
/// (it selects the per-file rule scopes and the exemption class).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let rel = rel_path.replace('\\', "/");
    let kind = classify(&rel);
    let tokens = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let file = File {
        rel,
        kind,
        lines,
        comments: comments_by_line(&tokens),
        in_test: cfg_test_mask(&tokens),
        tokens,
    };

    let mut out = Vec::new();
    file.l001_unsafe_safety(&mut out);
    file.l002_panics(&mut out);
    file.l003_orderings(&mut out);
    file.l004_threads(&mut out);
    file.l005_ffi(&mut out);
    file.l006_narrowing(&mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

struct File<'a> {
    rel: String,
    kind: FileKind,
    tokens: Vec<Token>,
    lines: Vec<&'a str>,
    /// Concatenated comment text per (1-based) start line.
    comments: BTreeMap<u32, String>,
    /// Per token: is it inside a `#[cfg(test)]`-guarded brace block?
    in_test: Vec<bool>,
}

fn comments_by_line(tokens: &[Token]) -> BTreeMap<u32, String> {
    let mut map: BTreeMap<u32, String> = BTreeMap::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let slot = map.entry(t.line).or_default();
        slot.push_str(&t.text);
        slot.push(' ');
    }
    map
}

/// Marks every token inside a brace block introduced by a
/// `#[cfg(test)]` attribute (the repo convention is `#[cfg(test)] mod
/// tests { … }`; any braced item works). Only the literal `cfg(test)`
/// form is recognised.
fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut depth = 0i64;
    let mut regions: Vec<i64> = Vec::new();
    let mut pending = false;
    let mut j = 0usize;
    while j < code.len() {
        let ti = code[j];
        let t = &tokens[ti];
        // Attribute: `#[ … ]` or `#![ … ]`. Scan to the matching `]`,
        // checking for a literal `cfg ( test )` run.
        if t.is_punct('#') {
            let mut k = j + 1;
            if code.get(k).is_some_and(|&i| tokens[i].is_punct('!')) {
                k += 1;
            }
            if code.get(k).is_some_and(|&i| tokens[i].is_punct('[')) {
                let mut bd = 0i64;
                let mut body: Vec<usize> = Vec::new();
                while let Some(&i) = code.get(k) {
                    if tokens[i].is_punct('[') {
                        bd += 1;
                    } else if tokens[i].is_punct(']') {
                        bd -= 1;
                        if bd == 0 {
                            break;
                        }
                    } else if bd > 0 {
                        body.push(i);
                    }
                    k += 1;
                }
                if body.windows(4).any(|w| {
                    tokens[w[0]].is_ident("cfg")
                        && tokens[w[1]].is_punct('(')
                        && tokens[w[2]].is_ident("test")
                        && tokens[w[3]].is_punct(')')
                }) {
                    pending = true;
                }
                for &i in &body {
                    mask[i] = !regions.is_empty();
                }
                j = k + 1;
                continue;
            }
        }
        if t.is_punct('{') {
            if pending {
                regions.push(depth);
                pending = false;
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if regions.last() == Some(&depth) {
                regions.pop();
                // The closing brace still belongs to the region.
                mask[ti] = true;
                j += 1;
                continue;
            }
        } else if t.is_punct(';') && pending {
            // `#[cfg(test)] mod name;` — an out-of-line module; the
            // file itself is walked (and classified) separately.
            pending = false;
        }
        mask[ti] = !regions.is_empty();
        j += 1;
    }
    mask
}

impl File<'_> {
    /// Indices of non-comment tokens, in order.
    fn code(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(|&i| !self.tokens[i].is_comment())
    }

    /// The `k`-th non-comment token after (or before, negative) `i`.
    fn nth_code(&self, i: usize, k: isize) -> Option<&Token> {
        let mut idx = i as isize;
        let mut left = k;
        while left != 0 {
            idx += left.signum();
            if idx < 0 || idx as usize >= self.tokens.len() {
                return None;
            }
            if !self.tokens[idx as usize].is_comment() {
                left -= left.signum();
            }
        }
        self.tokens.get(idx as usize)
    }

    /// Is there a `// <needle>` justification for a token on `line`?
    /// Accepts a comment on the same line, or a contiguous run of
    /// comment/attribute/continuation lines directly above (the scan
    /// stops at a blank line or at the end of the previous statement).
    fn justified(&self, line: u32, needle: &str) -> bool {
        if self.comments.get(&line).is_some_and(|c| c.contains(needle)) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let Some(raw) = self.lines.get(l as usize - 1) else {
                break;
            };
            let t = raw.trim();
            if t.is_empty() {
                break;
            }
            if t.starts_with("//") {
                if t.contains(needle) {
                    return true;
                }
            } else if !t.starts_with("#[")
                && !t.starts_with("#!")
                && (t.ends_with(';') || t.ends_with('}'))
            {
                // The previous statement ended here; the justification
                // must sit between it and the flagged line.
                break;
            }
            l -= 1;
        }
        false
    }

    /// Emits `msg` under `rule` unless a suppression with a reason
    /// covers `line`; a reason-less suppression is itself an error.
    fn emit(&self, out: &mut Vec<Diagnostic>, rule: &'static str, line: u32, msg: String) {
        match self.suppression(line, rule) {
            Some(true) => {}
            Some(false) => out.push(Diagnostic {
                file: self.rel.clone(),
                line,
                rule,
                msg: format!(
                    "suppression is missing its reason — write `// cs-lint: allow({rule}): <reason>`"
                ),
            }),
            None => out.push(Diagnostic {
                file: self.rel.clone(),
                line,
                rule,
                msg,
            }),
        }
    }

    /// Looks for `cs-lint: allow(<rule>)` covering `line`: on the line
    /// itself, or anywhere in the contiguous run of comment lines
    /// directly above (a suppression may wrap onto several `//` lines).
    /// `Some(true)`: suppressed with a reason; `Some(false)`: found but
    /// reason-less; `None`: no suppression.
    fn suppression(&self, line: u32, rule: &str) -> Option<bool> {
        if let Some(c) = self.comments.get(&line) {
            if let Some(found) = parse_allow(c, rule) {
                return Some(found);
            }
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let Some(raw) = self.lines.get(l as usize - 1) else {
                break;
            };
            let t = raw.trim();
            if t.starts_with("//") {
                if let Some(found) = parse_allow(t, rule) {
                    return Some(found);
                }
                l -= 1;
                continue;
            }
            // A trailing comment on the line directly above counts too.
            if l == line.saturating_sub(1) {
                if let Some(found) = self.comments.get(&l).and_then(|c| parse_allow(c, rule)) {
                    return Some(found);
                }
            }
            break;
        }
        None
    }

    // L001 — every `unsafe` is preceded by `// SAFETY:`.
    fn l001_unsafe_safety(&self, out: &mut Vec<Diagnostic>) {
        let mut seen = BTreeSet::new();
        for i in self.code() {
            let t = &self.tokens[i];
            if t.is_ident("unsafe") && seen.insert(t.line) && !self.justified(t.line, "SAFETY:") {
                self.emit(
                    out,
                    "L001",
                    t.line,
                    "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
                );
            }
        }
    }

    // L002 — no unwrap/expect/panic! in library code.
    fn l002_panics(&self, out: &mut Vec<Diagnostic>) {
        if self.kind.panics_allowed() {
            return;
        }
        for i in self.code() {
            if self.in_test[i] {
                continue;
            }
            let t = &self.tokens[i];
            let call = |name: &str| {
                t.is_ident(name)
                    && self.nth_code(i, -1).is_some_and(|p| p.is_punct('.'))
                    && self.nth_code(i, 1).is_some_and(|n| n.is_punct('('))
            };
            if call("unwrap") || call("expect") {
                self.emit(
                    out,
                    "L002",
                    t.line,
                    format!(
                        "`.{}()` in library code — return a typed error instead",
                        t.text
                    ),
                );
            } else if t.is_ident("panic") && self.nth_code(i, 1).is_some_and(|n| n.is_punct('!')) {
                self.emit(
                    out,
                    "L002",
                    t.line,
                    "`panic!` in library code — return a typed error instead".to_string(),
                );
            }
        }
    }

    // L003 — Relaxed/SeqCst need an ORDERING justification.
    fn l003_orderings(&self, out: &mut Vec<Diagnostic>) {
        let mut seen = BTreeSet::new();
        for i in self.code() {
            let t = &self.tokens[i];
            if !t.is_ident("Ordering") {
                continue;
            }
            let path = self.nth_code(i, 1).is_some_and(|a| a.is_punct(':'))
                && self.nth_code(i, 2).is_some_and(|a| a.is_punct(':'));
            let Some(which) = self.nth_code(i, 3) else {
                continue;
            };
            if path
                && (which.is_ident("Relaxed") || which.is_ident("SeqCst"))
                && seen.insert(t.line)
                && !self.justified(t.line, "ORDERING:")
            {
                self.emit(
                    out,
                    "L003",
                    t.line,
                    format!(
                        "`Ordering::{}` without an `// ORDERING:` justification",
                        which.text
                    ),
                );
            }
        }
    }

    // L004 — thread spawn/scope confined to the allowlisted modules.
    fn l004_threads(&self, out: &mut Vec<Diagnostic>) {
        if self.kind.panics_allowed() || THREAD_ALLOWED.contains(&self.rel.as_str()) {
            return;
        }
        for i in self.code() {
            if self.in_test[i] {
                continue;
            }
            let t = &self.tokens[i];
            if !t.is_ident("thread") {
                continue;
            }
            let path = self.nth_code(i, 1).is_some_and(|a| a.is_punct(':'))
                && self.nth_code(i, 2).is_some_and(|a| a.is_punct(':'));
            let Some(what) = self.nth_code(i, 3) else {
                continue;
            };
            if path && (what.is_ident("spawn") || what.is_ident("scope")) {
                self.emit(
                    out,
                    "L004",
                    t.line,
                    format!(
                        "`thread::{}` outside cs_core::parallel / algo::partition / cs_server::server — route work through a scheduler",
                        what.text
                    ),
                );
            }
        }
    }

    // L005 — `extern "C"` only in cs_graph::storage.
    fn l005_ffi(&self, out: &mut Vec<Diagnostic>) {
        if FFI_ALLOWED.contains(&self.rel.as_str()) {
            return;
        }
        for i in self.code() {
            let t = &self.tokens[i];
            if t.is_ident("extern")
                && self
                    .nth_code(i, 1)
                    .is_some_and(|n| n.kind == Kind::Str && n.text == "\"C\"")
            {
                self.emit(
                    out,
                    "L005",
                    t.line,
                    "`extern \"C\"` FFI outside cs_graph::storage".to_string(),
                );
            }
        }
    }

    // L006 — no narrowing `as` casts in the snapshot codec files.
    fn l006_narrowing(&self, out: &mut Vec<Diagnostic>) {
        if !NO_NARROWING.contains(&self.rel.as_str()) {
            return;
        }
        for i in self.code() {
            if self.in_test[i] {
                continue;
            }
            let t = &self.tokens[i];
            if t.is_ident("as") {
                if let Some(target) = self.nth_code(i, 1) {
                    if NARROW_TARGETS.contains(&target.text.as_str()) {
                        self.emit(
                            out,
                            "L006",
                            t.line,
                            format!(
                                "narrowing `as {}` cast in a snapshot codec path — use `try_into`/`From`",
                                target.text
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Parses a `cs-lint: allow(<rule>)` marker out of a comment. Returns
/// `Some(has_reason)` when the marker names `rule`, `None` otherwise.
fn parse_allow(comment: &str, rule: &str) -> Option<bool> {
    let marker = "cs-lint: allow(";
    let rest = &comment[comment.find(marker)? + marker.len()..];
    let close = rest.find(')')?;
    if rest[..close].trim() != rule {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    match after.strip_prefix(':') {
        Some(reason) => {
            // The reason ends at the comment text's end; require some
            // non-punctuation substance.
            Some(reason.trim().chars().any(|c| c.is_alphanumeric()))
        }
        None => Some(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(rel: &str, src: &str) -> Vec<&'static str> {
        lint_source(rel, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn classification() {
        assert_eq!(classify("crates/graph/src/model.rs"), FileKind::Lib);
        assert_eq!(classify("crates/graph/tests/io.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/src/harness.rs"), FileKind::Bench);
        assert_eq!(classify("crates/core/benches/x.rs"), FileKind::Bench);
        assert_eq!(classify("src/bin/csq.rs"), FileKind::Bin);
        assert_eq!(classify("crates/lint/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("examples/demo.rs"), FileKind::Example);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn safety_comment_satisfies_l001() {
        let bad = "pub fn f() { let _ = unsafe { g() }; }";
        assert_eq!(rules_of("crates/x/src/a.rs", bad), vec!["L001"]);
        let good = "pub fn f() {\n    // SAFETY: g has no preconditions here.\n    let _ = unsafe { g() };\n}";
        assert!(rules_of("crates/x/src/a.rs", good).is_empty());
    }

    #[test]
    fn l001_scans_past_attributes_and_wrapped_statements() {
        let good = "// SAFETY: reinterpreting is sound.\n#[cfg(unix)]\nlet bytes =\n    unsafe { cast(words) };";
        assert!(rules_of("crates/x/src/a.rs", good).is_empty());
        let bad = "fn prev() {}\nlet bytes = unsafe { cast(words) };";
        assert_eq!(rules_of("crates/x/src/a.rs", bad), vec!["L001"]);
    }

    #[test]
    fn cfg_test_mod_is_exempt_from_l002() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}";
        assert!(rules_of("crates/x/src/a.rs", src).is_empty());
        let src_bad = "pub fn lib(o: Option<u32>) -> u32 { o.unwrap() }";
        assert_eq!(rules_of("crates/x/src/a.rs", src_bad), vec!["L002"]);
    }

    #[test]
    fn unwrap_after_cfg_test_mod_is_still_flagged() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\npub fn lib(o: Option<u32>) -> u32 { o.unwrap() }";
        assert_eq!(rules_of("crates/x/src/a.rs", src), vec!["L002"]);
    }

    #[test]
    fn suppression_needs_reason() {
        let with = "pub fn f(o: Option<u32>) -> u32 {\n    // cs-lint: allow(L002): checked by caller invariant\n    o.unwrap()\n}";
        assert!(rules_of("crates/x/src/a.rs", with).is_empty());
        let without =
            "pub fn f(o: Option<u32>) -> u32 {\n    // cs-lint: allow(L002)\n    o.unwrap()\n}";
        let d = lint_source("crates/x/src/a.rs", without);
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("missing its reason"), "{}", d[0].msg);
    }

    #[test]
    fn suppression_may_wrap_over_comment_lines() {
        // The marker sits on the first line of a two-line comment; the
        // continuation line is directly above the violation.
        let src = "pub fn f(o: Option<u32>) -> u32 {\n    // cs-lint: allow(L002): the caller checked `o` via the\n    // surrounding match, so this cannot fail.\n    o.unwrap()\n}";
        assert!(rules_of("crates/x/src/a.rs", src).is_empty());
        // A blank line breaks the block: the suppression no longer
        // covers the violation.
        let gapped = "pub fn f(o: Option<u32>) -> u32 {\n    // cs-lint: allow(L002): stale, detached comment\n\n    o.unwrap()\n}";
        assert_eq!(rules_of("crates/x/src/a.rs", gapped), vec!["L002"]);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap_or_else(|| 0) }";
        assert!(rules_of("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn ordering_justifications() {
        let bad = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }";
        assert_eq!(rules_of("crates/x/src/a.rs", bad), vec!["L003"]);
        let trailing = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) } // ORDERING: counter, no sync needed";
        assert!(rules_of("crates/x/src/a.rs", trailing).is_empty());
        let above = "fn f(a: &AtomicU64) -> u64 {\n    // ORDERING: monotonic counter.\n    a.load(Ordering::SeqCst)\n}";
        assert!(rules_of("crates/x/src/a.rs", above).is_empty());
        // Acquire/Release pairs document themselves; cmp::Ordering is free.
        let acq = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Acquire) }";
        assert!(rules_of("crates/x/src/a.rs", acq).is_empty());
        let cmp = "fn f(a: i64, b: i64) -> Ordering { a.cmp(&b) }";
        assert!(rules_of("crates/x/src/a.rs", cmp).is_empty());
    }

    #[test]
    fn thread_spawn_confinement() {
        let src = "pub fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_of("crates/x/src/a.rs", src), vec!["L004"]);
        assert!(rules_of("crates/core/src/parallel.rs", src).is_empty());
        assert!(rules_of("crates/core/src/algo/partition.rs", src).is_empty());
        assert!(rules_of("crates/server/src/server.rs", src).is_empty());
        assert!(rules_of("crates/x/tests/t.rs", src).is_empty());
        let scope = "pub fn f() { std::thread::scope(|s| {}); }";
        assert_eq!(rules_of("crates/x/src/a.rs", scope), vec!["L004"]);
    }

    #[test]
    fn ffi_confinement() {
        let src = "extern \"C\" { fn strlen(s: *const u8) -> usize; }";
        assert_eq!(rules_of("crates/x/src/a.rs", src), vec!["L005"]);
        assert!(rules_of("crates/graph/src/storage.rs", src).is_empty());
        let rust_abi = "extern \"Rust\" fn f() {}";
        assert!(rules_of("crates/x/src/a.rs", rust_abi).is_empty());
    }

    #[test]
    fn narrowing_casts_only_in_codec_files() {
        let src = "pub fn f(x: u64) -> u32 { x as u32 }";
        assert_eq!(rules_of("crates/graph/src/binfmt.rs", src), vec!["L006"]);
        assert!(rules_of("crates/graph/src/model.rs", src).is_empty());
        let widen = "pub fn f(x: u32) -> u64 { x as u64 }";
        assert!(rules_of("crates/graph/src/binfmt.rs", widen).is_empty());
        let ptr = "pub fn f(p: *const u8) -> *const u32 { p as *const u32 }";
        // A pointer cast's `as` is followed by `*`, not a narrow target;
        // the `u32` in the pointee type must not fire.
        assert!(rules_of("crates/graph/src/storage.rs", ptr).is_empty());
    }

    #[test]
    fn keywords_in_literals_never_fire() {
        let src = r##"
pub fn f() -> &'static str {
    let a = "unsafe { }";
    let b = r#"x.unwrap() // Ordering::Relaxed"#;
    let c = 'p'; // a char, not a lifetime: panic!'s p
    "done"
}
"##;
        assert!(rules_of("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_are_line_sorted_and_displayed() {
        let src =
            "pub fn f(o: Option<u32>) -> u32 {\n    let _ = unsafe { g() };\n    o.unwrap()\n}";
        let d = lint_source("crates/x/src/a.rs", src);
        assert_eq!(
            d.iter().map(|x| (x.line, x.rule)).collect::<Vec<_>>(),
            vec![(2, "L001"), (3, "L002")]
        );
        assert!(d[0].to_string().starts_with("crates/x/src/a.rs:2: L001:"));
    }
}
