#![forbid(unsafe_code)]
//! `cs-lint` — workspace-native static analysis for this repository.
//!
//! The build environment is offline (no crates.io), so the linter is
//! self-contained: a hand-rolled, comment/string/raw-string-aware Rust
//! [`lexer`] and a set of token-pattern [`rules`] that encode the
//! project's correctness conventions — SAFETY-commented `unsafe`,
//! panic-free library crates, justified atomic orderings, confined
//! thread spawning and FFI, and checked narrowing in the snapshot
//! codec. See the rules table in [`rules`] and the "Correctness
//! tooling" section of the repository README.
//!
//! The linter deliberately lints **this workspace**, not arbitrary
//! Rust: it trades generality (no macro expansion, no type inference)
//! for zero dependencies and exact, reviewable rules. Anything it
//! cannot prove is reported and must be fixed or suppressed with a
//! reasoned `// cs-lint: allow(RULE): why` marker.
//!
//! Run it with `cargo run -p cs-lint` from the workspace root; it exits
//! nonzero if any rule fires. The library entry points are
//! [`rules::lint_source`] (one file) and [`lint_workspace`] (every
//! `crates/*/src` and root `src` file).

pub mod lexer;
pub mod rules;

use rules::Diagnostic;
use std::io;
use std::path::{Path, PathBuf};

/// Lints every `.rs` file under `crates/*/src` and the facade's `src/`
/// below `root`. Returns the number of files checked and all
/// diagnostics, in deterministic (path, line) order.
///
/// `vendor/` is deliberately not walked: it holds API-subset copies of
/// third-party crates that do not follow this project's conventions.
pub fn lint_workspace(root: &Path) -> io::Result<(usize, Vec<Diagnostic>)> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let mut diags = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        diags.extend(rules::lint_source(&rel, &src));
    }
    Ok((files.len(), diags))
}

/// Collects `.rs` files under `dir` recursively (no-op if absent).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}
