//! Property-based tests of the relational substrate: the hash join
//! must agree with a nested-loop reference, projection/distinct must
//! obey set algebra, and BGP evaluation must match a brute-force
//! embedding enumerator on random graphs.

use cs_engine::{eval_bgp, Bgp, Binding, Table, Term};
use cs_graph::generate::gnp;
use cs_graph::{NodeId, Predicate};
use proptest::prelude::*;

/// Random table strategy over a small binding domain.
fn table_strategy(vars: Vec<&'static str>) -> impl Strategy<Value = Table> {
    let width = vars.len();
    proptest::collection::vec(proptest::collection::vec(0u32..6, width), 0..12).prop_map(
        move |rows| {
            let mut t = Table::with_columns(&vars);
            for r in rows {
                let row: Vec<Binding> = r.into_iter().map(|v| Binding::Node(NodeId(v))).collect();
                t.push_row(&row);
            }
            t
        },
    )
}

/// Nested-loop reference join on shared variables.
fn reference_join(a: &Table, b: &Table) -> Vec<Vec<Binding>> {
    let shared: Vec<(usize, usize)> = a
        .vars()
        .iter()
        .enumerate()
        .filter_map(|(i, v)| b.col(v).map(|j| (i, j)))
        .collect();
    let b_extra: Vec<usize> = (0..b.vars().len())
        .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
        .collect();
    let mut out = Vec::new();
    for ra in a.rows() {
        for rb in b.rows() {
            if shared.iter().all(|&(i, j)| ra[i] == rb[j]) {
                let mut row = ra.to_vec();
                row.extend(b_extra.iter().map(|&j| rb[j]));
                out.push(row);
            }
        }
    }
    out
}

fn sorted(mut rows: Vec<Vec<Binding>>) -> Vec<Vec<Binding>> {
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_join_matches_nested_loop(
        a in table_strategy(vec!["x", "y"]),
        b in table_strategy(vec!["y", "z"]),
    ) {
        let joined = a.natural_join(&b);
        let got = sorted(joined.rows().map(|r| r.to_vec()).collect());
        let want = sorted(reference_join(&a, &b));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn join_is_commutative_up_to_column_order(
        a in table_strategy(vec!["x", "y"]),
        b in table_strategy(vec!["y", "z"]),
    ) {
        let ab = a.natural_join(&b);
        let ba = b.natural_join(&a);
        prop_assert_eq!(ab.len(), ba.len());
        // Same multiset of (x, y, z) triples.
        let pick = |t: &Table, names: [&str; 3]| -> Vec<Vec<Binding>> {
            let cols: Vec<usize> = names.iter().map(|n| t.col(n).unwrap()).collect();
            sorted(t.rows().map(|r| cols.iter().map(|&c| r[c]).collect()).collect())
        };
        prop_assert_eq!(pick(&ab, ["x", "y", "z"]), pick(&ba, ["x", "y", "z"]));
    }

    #[test]
    fn product_when_no_shared_vars(
        a in table_strategy(vec!["x"]),
        b in table_strategy(vec!["z"]),
    ) {
        prop_assert_eq!(a.natural_join(&b).len(), a.len() * b.len());
    }

    #[test]
    fn distinct_is_idempotent(a in table_strategy(vec!["x", "y"])) {
        let d1 = a.clone().distinct();
        let d2 = d1.clone().distinct();
        prop_assert_eq!(d1.len(), d2.len());
        prop_assert!(d1.len() <= a.len());
    }

    #[test]
    fn projection_preserves_row_count(a in table_strategy(vec!["x", "y"])) {
        prop_assert_eq!(a.project(&["y"]).len(), a.len());
        prop_assert_eq!(a.project(&["y", "x"]).len(), a.len());
    }

    /// BGP evaluation agrees with brute-force embedding enumeration on
    /// random graphs for a 2-pattern path BGP.
    #[test]
    fn bgp_matches_bruteforce(seed in any::<u64>(), p in 0.05f64..0.3) {
        let g = gnp(12, p, seed);
        let mut bgp = Bgp::new();
        bgp.push(Term::var("x"), Term::var("e1"), Term::var("y"));
        bgp.push(Term::var("y"), Term::var("e2"), Term::var("z"));
        let got = eval_bgp(&g, &bgp);

        // Brute force: all pairs of edges (e1, e2) with dst(e1) = src(e2).
        let mut want = 0usize;
        for e1 in g.edge_ids() {
            for e2 in g.edge_ids() {
                if g.edge(e1).dst == g.edge(e2).src {
                    want += 1;
                }
            }
        }
        prop_assert_eq!(got.len(), want);
    }

    /// Predicate pushdown never changes the result, only the plan.
    #[test]
    fn label_constant_equals_post_filter(seed in any::<u64>()) {
        let g = gnp(12, 0.2, seed);
        // Constrained at scan time:
        let mut bgp = Bgp::new();
        bgp.push(
            Term::var("x"),
            Term::pred("e", Predicate::label("r0")),
            Term::var("y"),
        );
        let scan = eval_bgp(&g, &bgp);

        // Unconstrained scan + post-filter:
        let mut bgp2 = Bgp::new();
        bgp2.push(Term::var("x"), Term::var("e"), Term::var("y"));
        let all = eval_bgp(&g, &bgp2);
        let col = all.col("e").unwrap();
        let filtered = all.select(|row| {
            row[col]
                .as_edge()
                .is_some_and(|e| g.edge_label(e) == "r0")
        });
        prop_assert_eq!(scan.len(), filtered.len());
    }
}
