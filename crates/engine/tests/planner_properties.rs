//! Property tests of the statistics-driven planner (vendored
//! proptest): plan-ordered `eval_bgp` must produce the same canonical
//! result set as the greedy reference on random generated graphs, and
//! `explain_plan` cardinality estimates must upper-bound the actual
//! pattern table sizes.

use cs_engine::{eval_bgp, eval_bgp_greedy, plan_bgp, Bgp, Binding, Table, Term};
use cs_graph::generate::gnp;
use cs_graph::{figure1, Predicate};
use proptest::prelude::*;

/// Rows projected onto a fixed column order, sorted — the canonical
/// form two evaluations are compared in.
fn canonical(t: &Table, order: &[&str]) -> Vec<Vec<Binding>> {
    let p = t.project(order);
    let mut rows: Vec<Vec<Binding>> = p.rows().map(|r| r.to_vec()).collect();
    rows.sort();
    rows
}

fn assert_same_results(g: &cs_graph::Graph, bgp: &Bgp) {
    let planned = eval_bgp(g, bgp);
    let greedy = eval_bgp_greedy(g, bgp);
    assert_eq!(planned.len(), greedy.len());
    // Same variables (order may differ with the join order).
    let order: Vec<&str> = planned.vars().iter().map(|v| v.as_ref()).collect();
    for v in greedy.vars() {
        assert!(order.contains(&v.as_ref()), "missing column {v}");
    }
    assert_eq!(canonical(&planned, &order), canonical(&greedy, &order));
}

/// Every per-step estimate must upper-bound the actual size of that
/// pattern's table evaluated in isolation (no pushdown).
fn assert_estimates_are_upper_bounds(g: &cs_graph::Graph, bgp: &Bgp) {
    let plan = plan_bgp(g, bgp);
    for step in &plan.steps {
        let p = &bgp.patterns[step.pattern];
        let mut single = Bgp::new();
        single.push(p.src.clone(), p.edge.clone(), p.dst.clone());
        let actual = eval_bgp(g, &single).len();
        assert!(
            actual <= step.estimate,
            "pattern #{}: actual {} exceeds estimate {} in {plan}",
            step.pattern,
            actual,
            step.estimate
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Triangle BGP with one label-indexed pattern: join-order
    /// decisions differ between planner and greedy, results must not.
    #[test]
    fn planned_equals_greedy_triangle(seed in any::<u64>(), p in 0.05f64..0.3) {
        let g = gnp(10, p, seed);
        let mut bgp = Bgp::new();
        bgp.push(
            Term::var("x"),
            Term::pred("e1", Predicate::label("r0")),
            Term::var("y"),
        );
        bgp.push(Term::var("y"), Term::var("e2"), Term::var("z"));
        bgp.push(Term::var("z"), Term::var("e3"), Term::var("x"));
        assert_same_results(&g, &bgp);
    }

    /// Path BGP anchored on a pinned node label: exercises the
    /// node-index scan access path and bound-variable pushdown.
    #[test]
    fn planned_equals_greedy_pinned_path(seed in any::<u64>(), p in 0.05f64..0.35) {
        let g = gnp(10, p, seed);
        let mut bgp = Bgp::new();
        bgp.push(
            Term::pred("x", Predicate::label("n0")),
            Term::var("e1"),
            Term::var("y"),
        );
        bgp.push(Term::var("y"), Term::var("e2"), Term::var("z"));
        assert_same_results(&g, &bgp);
    }

    /// Star BGP (all patterns share the centre variable).
    #[test]
    fn planned_equals_greedy_star(seed in any::<u64>(), p in 0.05f64..0.3) {
        let g = gnp(9, p, seed);
        let mut bgp = Bgp::new();
        bgp.push(
            Term::var("c"),
            Term::pred("e1", Predicate::label("r1")),
            Term::var("a"),
        );
        bgp.push(
            Term::var("c"),
            Term::pred("e2", Predicate::label("r2")),
            Term::var("b"),
        );
        bgp.push(Term::var("c"), Term::var("e3"), Term::var("d"));
        assert_same_results(&g, &bgp);
    }

    /// Estimates stay upper bounds on random graphs too.
    #[test]
    fn estimates_upper_bound_on_random_graphs(seed in any::<u64>(), p in 0.05f64..0.3) {
        let g = gnp(10, p, seed);
        let mut bgp = Bgp::new();
        bgp.push(
            Term::var("x"),
            Term::pred("e1", Predicate::label("r0")),
            Term::var("y"),
        );
        bgp.push(Term::pred("y", Predicate::label("n3")), Term::var("e2"), Term::var("z"));
        assert_estimates_are_upper_bounds(&g, &bgp);
    }
}

/// `explain_plan` estimates on the Figure 1 graph upper-bound the
/// actual pattern table sizes for the paper's Q1-style patterns.
#[test]
fn estimates_upper_bound_on_figure1() {
    let g = figure1();

    let mut q1 = Bgp::new();
    q1.push(
        Term::pred("x", Predicate::typed("entrepreneur")),
        Term::pred("_e0", Predicate::label("citizenOf")),
        Term::constant("USA", 0),
    );
    assert_estimates_are_upper_bounds(&g, &q1);

    let mut path = Bgp::new();
    path.push(
        Term::var("x"),
        Term::pred("_e0", Predicate::label("citizenOf")),
        Term::var("c"),
    );
    path.push(Term::var("x"), Term::var("e2"), Term::var("y"));
    path.push(
        Term::pred("y", Predicate::typed("organisation")),
        Term::var("e3"),
        Term::var("z"),
    );
    assert_estimates_are_upper_bounds(&g, &path);
}
