//! Values a query variable can be bound to.

use cs_graph::{EdgeId, NodeId};
use std::fmt;

/// A binding of one query variable: a graph node, a graph edge, or a
/// connecting tree (by index into the CTP result list it joins with).
///
/// Trees appear only in the columns produced for a CTP's underlined
/// variable (paper Def. 2.5); BGP evaluation produces nodes and edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Binding {
    /// A node binding.
    Node(NodeId),
    /// An edge binding.
    Edge(EdgeId),
    /// A connecting-tree binding (index into the owning CTP result set).
    Tree(u32),
}

impl Binding {
    /// The bound node, if any.
    pub fn as_node(self) -> Option<NodeId> {
        match self {
            Binding::Node(n) => Some(n),
            _ => None,
        }
    }

    /// The bound edge, if any.
    pub fn as_edge(self) -> Option<EdgeId> {
        match self {
            Binding::Edge(e) => Some(e),
            _ => None,
        }
    }

    /// The bound tree index, if any.
    pub fn as_tree(self) -> Option<u32> {
        match self {
            Binding::Tree(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binding::Node(n) => write!(f, "{n:?}"),
            Binding::Edge(e) => write!(f, "{e:?}"),
            Binding::Tree(t) => write!(f, "t{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Binding::Node(NodeId(3)).as_node(), Some(NodeId(3)));
        assert_eq!(Binding::Node(NodeId(3)).as_edge(), None);
        assert_eq!(Binding::Edge(EdgeId(1)).as_edge(), Some(EdgeId(1)));
        assert_eq!(Binding::Tree(9).as_tree(), Some(9));
    }

    #[test]
    fn display() {
        assert_eq!(Binding::Node(NodeId(3)).to_string(), "n3");
        assert_eq!(Binding::Tree(2).to_string(), "t2");
    }
}
