//! Basic Graph Patterns (paper Defs. 2.3–2.4, 2.7) and their evaluation.
//!
//! A BGP is a connected set of edge patterns; evaluating it computes all
//! embeddings (Def. 2.7) into the graph, materialised as a [`Table`]
//! with one column per variable — step (A) of the paper's strategy (§3).

use crate::binding::Binding;
use crate::plan::{plan_bgp, AccessPath, BgpPlan};
use crate::table::Table;
use cs_graph::fxhash::FxHashSet;
use cs_graph::{Graph, Predicate};
use std::sync::Arc;

/// One position of an edge pattern: a variable plus the predicate that
/// constrains what it may bind to. The paper's short syntax `"Alice"`
/// is `Term::constant("Alice")` — a fresh hidden variable with a
/// label-equality predicate.
#[derive(Debug, Clone)]
pub struct Term {
    /// The variable name.
    pub var: Arc<str>,
    /// The predicate constraining this variable.
    pub pred: Predicate,
}

impl Term {
    /// A plain variable with the empty predicate.
    pub fn var(name: &str) -> Self {
        Term {
            var: Arc::from(name),
            pred: Predicate::any(),
        }
    }

    /// A variable with a predicate.
    pub fn pred(name: &str, pred: Predicate) -> Self {
        Term {
            var: Arc::from(name),
            pred,
        }
    }

    /// The short syntax: a hidden variable constrained to a label
    /// constant. `hidden_id` must be unique within the query; the EQL
    /// parser manages the numbering.
    pub fn constant(label: &str, hidden_id: usize) -> Self {
        Term {
            var: Arc::from(format!("_c{hidden_id}")),
            pred: Predicate::label(label),
        }
    }
}

/// An edge pattern `(p1, p2, p3)`: source node, edge, target node.
#[derive(Debug, Clone)]
pub struct TriplePattern {
    /// Predicate/variable on the source node.
    pub src: Term,
    /// Predicate/variable on the edge.
    pub edge: Term,
    /// Predicate/variable on the target node.
    pub dst: Term,
}

/// A Basic Graph Pattern: a set of edge patterns that must be connected
/// through shared variables (Def. 2.4).
#[derive(Debug, Clone, Default)]
pub struct Bgp {
    /// The edge patterns.
    pub patterns: Vec<TriplePattern>,
}

impl Bgp {
    /// An empty BGP.
    pub fn new() -> Self {
        Bgp::default()
    }

    /// Adds an edge pattern.
    pub fn push(&mut self, src: Term, edge: Term, dst: Term) -> &mut Self {
        self.patterns.push(TriplePattern { src, edge, dst });
        self
    }

    /// All variable names, in order of first appearance.
    pub fn variables(&self) -> Vec<Arc<str>> {
        let mut vars: Vec<Arc<str>> = Vec::new();
        for p in &self.patterns {
            for t in [&p.src, &p.edge, &p.dst] {
                if !vars.iter().any(|v| v == &t.var) {
                    vars.push(t.var.clone());
                }
            }
        }
        vars
    }

    /// Checks Def. 2.4 connectivity: the variable-sharing graph over
    /// the patterns must form a single connected component.
    ///
    /// Note this is strictly stronger than requiring each pattern to
    /// share a variable with *some* other pattern — e.g. the patterns
    /// {(x,e1,y), (x,e2,z), (a,e3,b), (a,e4,c)} pass the pairwise
    /// check yet split into two components, and evaluating them as one
    /// BGP would silently compute a cross product.
    pub fn is_connected(&self) -> bool {
        pattern_components(&self.patterns).len() <= 1
    }
}

/// Groups pattern indices into maximal components connected through
/// shared variables (Def. 2.4) — union-find with path halving. Each
/// component is one BGP; a single component means the pattern set is
/// connected. Components are sorted by their smallest pattern index,
/// members ascending.
pub fn pattern_components(patterns: &[TriplePattern]) -> Vec<Vec<usize>> {
    let n = patterns.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let vars_of = |p: &TriplePattern| [p.src.var.clone(), p.edge.var.clone(), p.dst.var.clone()];
    for i in 0..n {
        for j in (i + 1)..n {
            let vi = vars_of(&patterns[i]);
            let shared = vars_of(&patterns[j]).iter().any(|v| vi.contains(v));
            if shared {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: cs_graph::fxhash::FxHashMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|v| v[0]);
    out
}

/// The bindings the accumulated table already holds for a pattern's
/// variable positions — the semi-join pushdown sets. A position is
/// `None` when the variable is not yet bound.
#[derive(Debug, Default)]
struct BoundSets {
    src: Option<FxHashSet<Binding>>,
    edge: Option<FxHashSet<Binding>>,
    dst: Option<FxHashSet<Binding>>,
}

impl BoundSets {
    /// Collects the pushdown sets for `p` from the accumulated table.
    fn from_table(acc: &Table, p: &TriplePattern) -> BoundSets {
        let get = |v: &Arc<str>| -> Option<FxHashSet<Binding>> {
            acc.col(v)
                .map(|_| acc.distinct_column(v).into_iter().collect())
        };
        BoundSets {
            src: get(&p.src.var),
            edge: get(&p.edge.var),
            dst: get(&p.dst.var),
        }
    }
}

/// Evaluates one triple pattern into a table under a planned access
/// path, with bound-variable pushdown.
///
/// The access path fixes the *static* candidate source (edge-label
/// index, node-index scan, full scan); when the accumulated table
/// already binds one of the pattern's variables, the evaluator may
/// instead expand from the bound bindings when that set is smaller —
/// the semi-join-style pushdown that makes cost-ordered plans prune.
/// Either way, bound sets are applied as membership filters, so the
/// produced table contains exactly the rows that can survive the join
/// with the accumulated table.
fn eval_pattern_access(
    g: &Graph,
    p: &TriplePattern,
    access: &AccessPath,
    bound: &BoundSets,
) -> Table {
    // Output schema: deduplicate repeated variables within the pattern.
    let mut cols: Vec<Arc<str>> = vec![p.src.var.clone()];
    let edge_dup = p.edge.var == p.src.var;
    if !edge_dup {
        cols.push(p.edge.var.clone());
    }
    let dst_dup_src = p.dst.var == p.src.var;
    let dst_dup_edge = p.dst.var == p.edge.var;
    if !dst_dup_src && !dst_dup_edge {
        cols.push(p.dst.var.clone());
    }
    let mut out = Table::new(cols);

    let dups = (edge_dup, dst_dup_src, dst_dup_edge);
    if bound.src.is_some() || bound.edge.is_some() || bound.dst.is_some() {
        scan_candidates(g, p, access, bound, |e| {
            // Semi-join pushdown: rows incompatible with the
            // accumulated table's bindings can never survive the join.
            let ed = g.edge(e);
            if bound
                .src
                .as_ref()
                .is_some_and(|s| !s.contains(&Binding::Node(ed.src)))
                || bound
                    .edge
                    .as_ref()
                    .is_some_and(|s| !s.contains(&Binding::Edge(e)))
                || bound
                    .dst
                    .as_ref()
                    .is_some_and(|s| !s.contains(&Binding::Node(ed.dst)))
            {
                return;
            }
            emit_row(g, p, e, dups, &mut out);
        });
    } else {
        // Monomorphised fast path: an unbound (first or standalone)
        // pattern pays no per-edge bound checks at all.
        scan_candidates(g, p, access, bound, |e| emit_row(g, p, e, dups, &mut out));
    }
    out
}

/// Applies the pattern predicates and repeated-variable constraints to
/// one candidate edge and appends the resulting row. `dups` is
/// (edge==src, dst==src, dst==edge) variable coincidence, precomputed
/// by the caller.
#[inline(always)]
fn emit_row(
    g: &Graph,
    p: &TriplePattern,
    e: cs_graph::EdgeId,
    (edge_dup, dst_dup_src, dst_dup_edge): (bool, bool, bool),
    out: &mut Table,
) {
    let ed = g.edge(e);
    if !p.src.pred.matches_node(g, ed.src)
        || !p.edge.pred.matches_edge(g, e)
        || !p.dst.pred.matches_node(g, ed.dst)
    {
        return;
    }
    // Repeated variables force equality between positions. A node
    // and an edge can never be equal bindings.
    if edge_dup || dst_dup_edge {
        return;
    }
    if dst_dup_src && ed.src != ed.dst {
        return;
    }
    let mut row = vec![Binding::Node(ed.src), Binding::Edge(e)];
    if !dst_dup_src {
        row.push(Binding::Node(ed.dst));
    } else {
        row.truncate(2);
    }
    out.push(row.into_boxed_slice());
}

/// Generates the candidate edges of a pattern under an access path and
/// feeds each to `emit` (which applies predicates, pushdown filters,
/// and row construction). Separated from the emission so the
/// no-pushdown path monomorphises without bound checks.
///
/// All candidate sources are costed in the same unit — incident edges
/// iterated (degree sums for node expansions, index length for the
/// label index) — the same measure the planner's estimates use, so
/// without pushdown the executed source always matches the planned
/// access path (ties resolved src-first, like [`crate::choose_access`]).
/// With pushdown, a strictly cheaper bound endpoint set overrides the
/// static path; the plan documents this possibility in
/// [`crate::PatternPlan::pushdown`].
fn scan_candidates(
    g: &Graph,
    p: &TriplePattern,
    access: &AccessPath,
    bound: &BoundSets,
    mut emit: impl FnMut(cs_graph::EdgeId),
) {
    // Bound edge bindings are exact candidates: nothing can beat them.
    if let Some(edges) = &bound.edge {
        for b in edges {
            if let Some(e) = b.as_edge() {
                emit(e);
            }
        }
        return;
    }

    let bound_nodes = |s: &FxHashSet<Binding>| -> Vec<cs_graph::NodeId> {
        s.iter().filter_map(|b| b.as_node()).collect()
    };
    let degree_sum =
        |nodes: &[cs_graph::NodeId]| -> usize { nodes.iter().map(|&n| g.degree(n)).sum() };
    let mut expand = |nodes: Vec<cs_graph::NodeId>, outgoing: bool| {
        for n in nodes {
            if outgoing {
                for a in g.outgoing(n) {
                    emit(a.edge());
                }
            } else {
                for a in g.incoming(n) {
                    emit(a.edge());
                }
            }
        }
    };

    // Node expansions available through pushdown: (cost, nodes,
    // outgoing?), src before dst so ties resolve like the planner.
    let mut sources: Vec<(usize, Vec<cs_graph::NodeId>, bool)> = Vec::new();
    if let Some(s) = &bound.src {
        let v = bound_nodes(s);
        sources.push((degree_sum(&v), v, true));
    }
    if let Some(s) = &bound.dst {
        let v = bound_nodes(s);
        sources.push((degree_sum(&v), v, false));
    }

    if let AccessPath::EdgeLabelIndex { label } = access {
        // The label index lists exactly the matching edges; expand from
        // a bound endpoint instead only when strictly cheaper (e.g. a
        // handful of bound nodes against a huge label index).
        let Some(l) = g.label_id(label) else {
            return; // absent label => empty table
        };
        let index: &[cs_graph::EdgeId] = g.edges_with_label(l);
        match sources.into_iter().min_by_key(|(c, _, _)| *c) {
            Some((c, nodes, outgoing)) if c < index.len() => {
                // The label is pinned, so walk each bound node's
                // labelled run — a binary search into the per-label
                // endpoint-sorted CSR column — instead of its whole
                // adjacency. Candidate order (ascending edge id per
                // node) matches the unfiltered expansion's survivors.
                for n in nodes {
                    let run = if outgoing {
                        g.out_edges_labelled(n, l)
                    } else {
                        g.in_edges_labelled(n, l)
                    };
                    for &e in run {
                        emit(e);
                    }
                }
            }
            _ => {
                for &e in index {
                    emit(e);
                }
            }
        }
        return;
    }

    // NodeIndexScan / FullScan: add the pinned endpoint indexes, then
    // run the cheapest source, falling back to a full edge scan.
    if let Some(sn) = pinned_nodes(g, &p.src.pred) {
        sources.push((degree_sum(&sn), sn, true));
    }
    if let Some(dn) = pinned_nodes(g, &p.dst.pred) {
        sources.push((degree_sum(&dn), dn, false));
    }
    match sources.into_iter().min_by_key(|(c, _, _)| *c) {
        Some((_, nodes, outgoing)) => expand(nodes, outgoing),
        None => {
            for e in g.edge_ids() {
                emit(e);
            }
        }
    }
}

/// Returns the node candidates if `pred` pins a label or type, else
/// `None` (meaning: all nodes).
fn pinned_nodes(g: &Graph, pred: &Predicate) -> Option<Vec<cs_graph::NodeId>> {
    if pred.eq_label().is_some() || pred.eq_type().is_some() {
        Some(cs_graph::matching_nodes(g, pred))
    } else {
        None
    }
}

/// Evaluates a whole BGP through the statistics-driven planner: a
/// cost-ordered left-deep plan is chosen *before* any pattern table is
/// materialised ([`plan_bgp`]), then executed with bound-variable
/// pushdown — each step's pattern is evaluated against only the
/// bindings the accumulated table can still join with.
pub fn eval_bgp(g: &Graph, bgp: &Bgp) -> Table {
    assert!(
        bgp.is_connected(),
        "BGP violates Def 2.4: patterns must be connected"
    );
    eval_bgp_with_plan(g, bgp, &plan_bgp(g, bgp))
}

/// Executes a BGP under an explicit [`BgpPlan`] (normally produced by
/// [`plan_bgp`]). The plan must cover every pattern of `bgp` exactly
/// once.
pub fn eval_bgp_with_plan(g: &Graph, bgp: &Bgp, plan: &BgpPlan) -> Table {
    if bgp.patterns.is_empty() {
        return Table::new(Vec::new());
    }
    let mut acc: Option<Table> = None;
    for (si, step) in plan.steps.iter().enumerate() {
        let p = &bgp.patterns[step.pattern];
        let t = match &acc {
            None => eval_pattern_access(g, p, &step.access, &BoundSets::default()),
            Some(a) => eval_pattern_access(g, p, &step.access, &BoundSets::from_table(a, p)),
        };
        let next = match acc.take() {
            None => t,
            Some(a) => a.natural_join(&t),
        };
        if next.is_empty() {
            // Short-circuit: the join result can only stay empty, but
            // the schema must still include every pattern variable.
            let mut vars = next.vars().to_vec();
            for later in &plan.steps[si..] {
                let q = &bgp.patterns[later.pattern];
                for term in [&q.src, &q.edge, &q.dst] {
                    if !vars.contains(&term.var) {
                        vars.push(term.var.clone());
                    }
                }
            }
            return Table::new(vars);
        }
        acc = Some(next);
    }
    acc.unwrap_or_else(|| Table::new(Vec::new()))
}

/// Evaluates a BGP with the pre-planner strategy: materialise every
/// pattern table eagerly, then join greedily by actual table size
/// (smallest first, preferring join partners that share a variable).
/// Kept as the reference implementation the planner is property-tested
/// against, and as an A/B baseline for benchmarks.
pub fn eval_bgp_greedy(g: &Graph, bgp: &Bgp) -> Table {
    assert!(
        bgp.is_connected(),
        "BGP violates Def 2.4: patterns must be connected"
    );
    if bgp.patterns.is_empty() {
        return Table::new(Vec::new());
    }
    let mut tables: Vec<Table> = bgp
        .patterns
        .iter()
        .map(|p| {
            let (access, _) = crate::plan::choose_access(g, p);
            eval_pattern_access(g, p, &access, &BoundSets::default())
        })
        .collect();

    // Pick the smallest to start.
    let start = tables
        .iter()
        .enumerate()
        .min_by_key(|(_, t)| t.len())
        .map(|(i, _)| i)
        // cs-lint: allow(L002): `tables` is non-empty — the empty-BGP
        // case returned above — so the minimum exists.
        .unwrap();
    let mut acc = tables.swap_remove(start);

    while !tables.is_empty() {
        // Prefer a table sharing a variable with acc.
        let pos = tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.vars().iter().any(|v| acc.col(v).is_some()))
            .min_by_key(|(_, t)| t.len())
            .map(|(i, _)| i)
            .or_else(|| {
                tables
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| t.len())
                    .map(|(i, _)| i)
            })
            // cs-lint: allow(L002): the while-guard keeps `tables`
            // non-empty, so the unfiltered fallback always finds one.
            .unwrap();
        let next = tables.swap_remove(pos);
        acc = acc.natural_join(&next);
        if acc.is_empty() {
            // Short-circuit: the join result can only stay empty, but
            // the schema must still include every pattern variable.
            let mut vars = acc.vars().to_vec();
            for t in &tables {
                for v in t.vars() {
                    if !vars.contains(v) {
                        vars.push(v.clone());
                    }
                }
            }
            return Table::new(vars);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::figure1;

    /// The first BGP of the paper's Q1:
    /// (τ(x)=entrepreneur, "citizenOf", "USA").
    fn us_entrepreneurs() -> Bgp {
        let mut b = Bgp::new();
        b.push(
            Term::pred("x", Predicate::typed("entrepreneur")),
            Term::pred("_e0", Predicate::label("citizenOf")),
            Term::constant("USA", 0),
        );
        b
    }

    #[test]
    fn q1_first_bgp() {
        let g = figure1();
        let t = eval_bgp(&g, &us_entrepreneurs());
        assert_eq!(t.len(), 2); // Bob, Carole
        let xs = t.distinct_column("x");
        let labels: Vec<_> = xs
            .iter()
            .map(|b| g.node_label(b.as_node().unwrap()))
            .collect();
        assert!(labels.contains(&"Bob") && labels.contains(&"Carole"));
    }

    #[test]
    fn sample_bgp_b1() {
        // b1 = {(x, "citizenOf", "USA"), (x, "founded", "OrgB")}
        // matches only Bob.
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::var("x"),
            Term::pred("_e0", Predicate::label("citizenOf")),
            Term::constant("USA", 0),
        );
        b.push(
            Term::var("x"),
            Term::pred("_e1", Predicate::label("founded")),
            Term::constant("OrgB", 1),
        );
        assert!(b.is_connected());
        let t = eval_bgp(&g, &b);
        assert_eq!(t.len(), 1);
        let x = t.distinct_column("x")[0].as_node().unwrap();
        assert_eq!(g.node_label(x), "Bob");
    }

    #[test]
    fn disconnected_bgp_detected() {
        let mut b = Bgp::new();
        b.push(Term::var("x"), Term::var("e1"), Term::var("y"));
        b.push(Term::var("z"), Term::var("e2"), Term::var("w"));
        assert!(!b.is_connected());
    }

    /// Regression: {(x,e1,y), (x,e2,z), (a,e3,b), (a,e4,c)} passes the
    /// naive pairwise-sharing check (every pattern shares a variable
    /// with *some* other pattern) but forms two components — the old
    /// `is_connected` accepted it and `eval_bgp` silently computed a
    /// cross product.
    #[test]
    fn pairwise_sharing_but_two_components_rejected() {
        let mut b = Bgp::new();
        b.push(Term::var("x"), Term::var("e1"), Term::var("y"));
        b.push(Term::var("x"), Term::var("e2"), Term::var("z"));
        b.push(Term::var("a"), Term::var("e3"), Term::var("b"));
        b.push(Term::var("a"), Term::var("e4"), Term::var("c"));
        assert!(
            !b.is_connected(),
            "two components must not count as connected"
        );
        assert_eq!(pattern_components(&b.patterns).len(), 2);
    }

    #[test]
    fn pattern_components_grouping() {
        let mut b = Bgp::new();
        b.push(Term::var("x"), Term::var("e1"), Term::var("y"));
        b.push(Term::var("a"), Term::var("e2"), Term::var("c"));
        b.push(Term::var("y"), Term::var("e3"), Term::var("z"));
        let comps = pattern_components(&b.patterns);
        assert_eq!(comps, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn planned_matches_greedy_on_fig1() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::var("x"),
            Term::pred("_e0", Predicate::label("citizenOf")),
            Term::var("c"),
        );
        b.push(Term::var("x"), Term::var("e2"), Term::var("y"));
        let planned = eval_bgp(&g, &b);
        let greedy = eval_bgp_greedy(&g, &b);
        assert_eq!(planned.len(), greedy.len());
        let order: Vec<&str> = planned.vars().iter().map(|v| v.as_ref()).collect();
        let mut a: Vec<Vec<Binding>> = planned.rows().map(|r| r.to_vec()).collect();
        let mut c: Vec<Vec<Binding>> = greedy.project(&order).rows().map(|r| r.to_vec()).collect();
        a.sort();
        c.sort();
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "Def 2.4")]
    fn eval_rejects_disconnected() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(Term::var("x"), Term::var("e1"), Term::var("y"));
        b.push(Term::var("z"), Term::var("e2"), Term::var("w"));
        eval_bgp(&g, &b);
    }

    #[test]
    fn unconstrained_pattern_matches_all_edges() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(Term::var("s"), Term::var("e"), Term::var("o"));
        let t = eval_bgp(&g, &b);
        assert_eq!(t.len(), g.edge_count());
    }

    #[test]
    fn repeated_variable_self_loop() {
        // (x, e, x) matches only self-loops — none in Figure 1.
        let g = figure1();
        let mut b = Bgp::new();
        b.push(Term::var("x"), Term::var("e"), Term::var("x"));
        let t = eval_bgp(&g, &b);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn empty_result_keeps_schema() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::var("x"),
            Term::pred("_e0", Predicate::label("citizenOf")),
            Term::constant("Mars", 0),
        );
        b.push(Term::var("x"), Term::var("e2"), Term::var("y"));
        let t = eval_bgp(&g, &b);
        assert!(t.is_empty());
        assert!(t.col("y").is_some(), "schema preserved on empty result");
    }

    #[test]
    fn missing_label_yields_empty() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::var("x"),
            Term::pred("_e0", Predicate::label("noSuchEdgeLabel")),
            Term::var("y"),
        );
        assert!(eval_bgp(&g, &b).is_empty());
    }

    #[test]
    fn variables_in_order() {
        let b = {
            let mut b = Bgp::new();
            b.push(Term::var("x"), Term::var("e"), Term::var("y"));
            b.push(Term::var("y"), Term::var("f"), Term::var("z"));
            b
        };
        let names: Vec<_> = b.variables().iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["x", "e", "y", "f", "z"]);
    }
}
