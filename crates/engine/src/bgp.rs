//! Basic Graph Patterns (paper Defs. 2.3–2.4, 2.7) and their evaluation.
//!
//! A BGP is a connected set of edge patterns; evaluating it computes all
//! embeddings (Def. 2.7) into the graph, materialised as a [`Table`]
//! with one column per variable — step (A) of the paper's strategy (§3).

use crate::binding::Binding;
use crate::table::Table;
use cs_graph::{Graph, Predicate};
use std::sync::Arc;

/// One position of an edge pattern: a variable plus the predicate that
/// constrains what it may bind to. The paper's short syntax `"Alice"`
/// is `Term::constant("Alice")` — a fresh hidden variable with a
/// label-equality predicate.
#[derive(Debug, Clone)]
pub struct Term {
    /// The variable name.
    pub var: Arc<str>,
    /// The predicate constraining this variable.
    pub pred: Predicate,
}

impl Term {
    /// A plain variable with the empty predicate.
    pub fn var(name: &str) -> Self {
        Term {
            var: Arc::from(name),
            pred: Predicate::any(),
        }
    }

    /// A variable with a predicate.
    pub fn pred(name: &str, pred: Predicate) -> Self {
        Term {
            var: Arc::from(name),
            pred,
        }
    }

    /// The short syntax: a hidden variable constrained to a label
    /// constant. `hidden_id` must be unique within the query; the EQL
    /// parser manages the numbering.
    pub fn constant(label: &str, hidden_id: usize) -> Self {
        Term {
            var: Arc::from(format!("_c{hidden_id}")),
            pred: Predicate::label(label),
        }
    }
}

/// An edge pattern `(p1, p2, p3)`: source node, edge, target node.
#[derive(Debug, Clone)]
pub struct TriplePattern {
    /// Predicate/variable on the source node.
    pub src: Term,
    /// Predicate/variable on the edge.
    pub edge: Term,
    /// Predicate/variable on the target node.
    pub dst: Term,
}

/// A Basic Graph Pattern: a set of edge patterns that must be connected
/// through shared variables (Def. 2.4).
#[derive(Debug, Clone, Default)]
pub struct Bgp {
    /// The edge patterns.
    pub patterns: Vec<TriplePattern>,
}

impl Bgp {
    /// An empty BGP.
    pub fn new() -> Self {
        Bgp::default()
    }

    /// Adds an edge pattern.
    pub fn push(&mut self, src: Term, edge: Term, dst: Term) -> &mut Self {
        self.patterns.push(TriplePattern { src, edge, dst });
        self
    }

    /// All variable names, in order of first appearance.
    pub fn variables(&self) -> Vec<Arc<str>> {
        let mut vars: Vec<Arc<str>> = Vec::new();
        for p in &self.patterns {
            for t in [&p.src, &p.edge, &p.dst] {
                if !vars.iter().any(|v| v == &t.var) {
                    vars.push(t.var.clone());
                }
            }
        }
        vars
    }

    /// Checks Def. 2.4 connectivity: with ≥ 2 patterns, each must share
    /// a variable with another.
    pub fn is_connected(&self) -> bool {
        if self.patterns.len() < 2 {
            return true;
        }
        self.patterns.iter().enumerate().all(|(i, p)| {
            self.patterns.iter().enumerate().any(|(j, q)| {
                i != j
                    && [&p.src, &p.edge, &p.dst]
                        .iter()
                        .any(|t| [&q.src, &q.edge, &q.dst].iter().any(|u| u.var == t.var))
            })
        })
    }
}

/// Evaluates one triple pattern into a table.
///
/// Access path selection: a label-equality predicate on the edge uses
/// the edge-label index; otherwise a label/type-equality on an endpoint
/// drives a node-index scan over that endpoint's incident edges; the
/// fallback is a full edge scan.
fn eval_pattern(g: &Graph, p: &TriplePattern) -> Table {
    // Output schema: deduplicate repeated variables within the pattern.
    let mut cols: Vec<Arc<str>> = vec![p.src.var.clone()];
    let edge_dup = p.edge.var == p.src.var;
    if !edge_dup {
        cols.push(p.edge.var.clone());
    }
    let dst_dup_src = p.dst.var == p.src.var;
    let dst_dup_edge = p.dst.var == p.edge.var;
    if !dst_dup_src && !dst_dup_edge {
        cols.push(p.dst.var.clone());
    }
    let mut out = Table::new(cols);

    let mut emit = |g: &Graph, e: cs_graph::EdgeId| {
        let ed = g.edge(e);
        if !p.src.pred.matches_node(g, ed.src)
            || !p.edge.pred.matches_edge(g, e)
            || !p.dst.pred.matches_node(g, ed.dst)
        {
            return;
        }
        // Repeated variables force equality between positions. A node
        // and an edge can never be equal bindings.
        if edge_dup || dst_dup_edge {
            return;
        }
        if dst_dup_src && ed.src != ed.dst {
            return;
        }
        let mut row = vec![Binding::Node(ed.src), Binding::Edge(e)];
        if !dst_dup_src {
            row.push(Binding::Node(ed.dst));
        } else {
            row.truncate(2);
        }
        out.push(row.into_boxed_slice());
    };

    // Candidate generation.
    if let Some(l) = p.edge.pred.eq_label().and_then(|s| g.label_id(s)) {
        for &e in g.edges_with_label(l) {
            emit(g, e);
        }
        return out;
    }
    if p.edge.pred.eq_label().is_some() {
        return out; // label not present in graph at all
    }
    let src_nodes = pinned_nodes(g, &p.src.pred);
    let dst_nodes = pinned_nodes(g, &p.dst.pred);
    match (src_nodes, dst_nodes) {
        (Some(sn), Some(dn)) if sn.len() <= dn.len() => {
            for n in sn {
                for a in g.outgoing(n) {
                    emit(g, a.edge);
                }
            }
        }
        (Some(sn), None) => {
            for n in sn {
                for a in g.outgoing(n) {
                    emit(g, a.edge);
                }
            }
        }
        (_, Some(dn)) => {
            for n in dn {
                for a in g.incoming(n) {
                    emit(g, a.edge);
                }
            }
        }
        (None, None) => {
            for e in g.edge_ids() {
                emit(g, e);
            }
        }
    }
    out
}

/// Returns the node candidates if `pred` pins a label or type, else
/// `None` (meaning: all nodes).
fn pinned_nodes(g: &Graph, pred: &Predicate) -> Option<Vec<cs_graph::NodeId>> {
    if pred.eq_label().is_some() || pred.eq_type().is_some() {
        Some(cs_graph::matching_nodes(g, pred))
    } else {
        None
    }
}

/// Evaluates a whole BGP: per-pattern tables, joined greedily — start
/// from the smallest table, and at each step join a pattern sharing a
/// variable with the accumulated result (falling back to the smallest
/// remaining if none connects). This is the textbook left-deep greedy
/// plan for conjunctive queries.
pub fn eval_bgp(g: &Graph, bgp: &Bgp) -> Table {
    assert!(
        bgp.is_connected(),
        "BGP violates Def 2.4: patterns must be connected"
    );
    if bgp.patterns.is_empty() {
        return Table::new(Vec::new());
    }
    let mut tables: Vec<Table> = bgp.patterns.iter().map(|p| eval_pattern(g, p)).collect();

    // Pick the smallest to start.
    let start = tables
        .iter()
        .enumerate()
        .min_by_key(|(_, t)| t.len())
        .map(|(i, _)| i)
        .unwrap();
    let mut acc = tables.swap_remove(start);

    while !tables.is_empty() {
        // Prefer a table sharing a variable with acc.
        let pos = tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.vars().iter().any(|v| acc.col(v).is_some()))
            .min_by_key(|(_, t)| t.len())
            .map(|(i, _)| i)
            .or_else(|| {
                tables
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| t.len())
                    .map(|(i, _)| i)
            })
            .unwrap();
        let next = tables.swap_remove(pos);
        acc = acc.natural_join(&next);
        if acc.is_empty() {
            // Short-circuit: the join result can only stay empty, but
            // the schema must still include every pattern variable.
            let mut vars = acc.vars().to_vec();
            for t in &tables {
                for v in t.vars() {
                    if !vars.contains(v) {
                        vars.push(v.clone());
                    }
                }
            }
            return Table::new(vars);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::figure1;

    /// The first BGP of the paper's Q1:
    /// (τ(x)=entrepreneur, "citizenOf", "USA").
    fn us_entrepreneurs() -> Bgp {
        let mut b = Bgp::new();
        b.push(
            Term::pred("x", Predicate::typed("entrepreneur")),
            Term::pred("_e0", Predicate::label("citizenOf")),
            Term::constant("USA", 0),
        );
        b
    }

    #[test]
    fn q1_first_bgp() {
        let g = figure1();
        let t = eval_bgp(&g, &us_entrepreneurs());
        assert_eq!(t.len(), 2); // Bob, Carole
        let xs = t.distinct_column("x");
        let labels: Vec<_> = xs
            .iter()
            .map(|b| g.node_label(b.as_node().unwrap()))
            .collect();
        assert!(labels.contains(&"Bob") && labels.contains(&"Carole"));
    }

    #[test]
    fn sample_bgp_b1() {
        // b1 = {(x, "citizenOf", "USA"), (x, "founded", "OrgB")}
        // matches only Bob.
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::var("x"),
            Term::pred("_e0", Predicate::label("citizenOf")),
            Term::constant("USA", 0),
        );
        b.push(
            Term::var("x"),
            Term::pred("_e1", Predicate::label("founded")),
            Term::constant("OrgB", 1),
        );
        assert!(b.is_connected());
        let t = eval_bgp(&g, &b);
        assert_eq!(t.len(), 1);
        let x = t.distinct_column("x")[0].as_node().unwrap();
        assert_eq!(g.node_label(x), "Bob");
    }

    #[test]
    fn disconnected_bgp_detected() {
        let mut b = Bgp::new();
        b.push(Term::var("x"), Term::var("e1"), Term::var("y"));
        b.push(Term::var("z"), Term::var("e2"), Term::var("w"));
        assert!(!b.is_connected());
    }

    #[test]
    #[should_panic(expected = "Def 2.4")]
    fn eval_rejects_disconnected() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(Term::var("x"), Term::var("e1"), Term::var("y"));
        b.push(Term::var("z"), Term::var("e2"), Term::var("w"));
        eval_bgp(&g, &b);
    }

    #[test]
    fn unconstrained_pattern_matches_all_edges() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(Term::var("s"), Term::var("e"), Term::var("o"));
        let t = eval_bgp(&g, &b);
        assert_eq!(t.len(), g.edge_count());
    }

    #[test]
    fn repeated_variable_self_loop() {
        // (x, e, x) matches only self-loops — none in Figure 1.
        let g = figure1();
        let mut b = Bgp::new();
        b.push(Term::var("x"), Term::var("e"), Term::var("x"));
        let t = eval_bgp(&g, &b);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn empty_result_keeps_schema() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::var("x"),
            Term::pred("_e0", Predicate::label("citizenOf")),
            Term::constant("Mars", 0),
        );
        b.push(Term::var("x"), Term::var("e2"), Term::var("y"));
        let t = eval_bgp(&g, &b);
        assert!(t.is_empty());
        assert!(t.col("y").is_some(), "schema preserved on empty result");
    }

    #[test]
    fn missing_label_yields_empty() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::var("x"),
            Term::pred("_e0", Predicate::label("noSuchEdgeLabel")),
            Term::var("y"),
        );
        assert!(eval_bgp(&g, &b).is_empty());
    }

    #[test]
    fn variables_in_order() {
        let b = {
            let mut b = Bgp::new();
            b.push(Term::var("x"), Term::var("e"), Term::var("y"));
            b.push(Term::var("y"), Term::var("f"), Term::var("z"));
            b
        };
        let names: Vec<_> = b.variables().iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["x", "e", "y", "f", "z"]);
    }
}
