//! Statistics-driven BGP planning.
//!
//! The paper delegates BGP evaluation to an RDBMS (§5.1) and inherits
//! its optimiser; this module is the equivalent for the in-memory
//! substrate. Planning happens *before* any pattern table is
//! materialised: each triple pattern gets an [`AccessPath`] with an
//! estimated cardinality derived from the graph's cached
//! [`Cardinalities`] snapshot, and the patterns are ordered into a
//! left-deep join sequence so that high-selectivity patterns evaluate
//! first and later steps can prune through bound-variable pushdown
//! (a semi-join filter on the variables the accumulated table already
//! binds).
//!
//! Every estimate is an **upper bound** on the actual pattern table
//! size: residual predicates and pushdown only remove rows.

use crate::bgp::{Bgp, TriplePattern};
use cs_graph::{Graph, Predicate};
use std::fmt;
use std::sync::Arc;

/// How the candidate edges of one triple pattern are generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// The edge term pins a label: scan the edge-label index.
    EdgeLabelIndex {
        /// The pinned edge label.
        label: String,
    },
    /// An endpoint term pins a node label or type: scan that
    /// endpoint's node-index candidates and their incident edges.
    NodeIndexScan {
        /// True if the indexed endpoint is the source (outgoing scan),
        /// false for the target (incoming scan).
        on_src: bool,
        /// The pinned node label or type.
        key: String,
    },
    /// No index applies: scan every edge.
    FullScan,
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPath::EdgeLabelIndex { label } => write!(f, "EdgeLabelIndex(\"{label}\")"),
            AccessPath::NodeIndexScan { on_src, key } => {
                let side = if *on_src { "src" } else { "dst" };
                write!(f, "NodeIndexScan({side}, \"{key}\")")
            }
            AccessPath::FullScan => write!(f, "FullScan"),
        }
    }
}

/// One step of a [`BgpPlan`]: which pattern to evaluate, how, at what
/// estimated cost, and which of its variables the accumulated table
/// already binds (enabling semi-join pushdown).
#[derive(Debug, Clone)]
pub struct PatternPlan {
    /// Index of the pattern in [`Bgp::patterns`].
    pub pattern: usize,
    /// The chosen access path.
    pub access: AccessPath,
    /// Upper bound on the pattern table size under `access`.
    pub estimate: usize,
    /// Estimated rows of the accumulated join *after* this step, under
    /// the classic independence assumption: `|prefix| × estimate /
    /// Π V(col)` over the shared join columns, where `V` is the
    /// distinct-value count of the column in this pattern's table —
    /// [`cs_graph::LabelCard::distinct_src`]/[`cs_graph::LabelCard::distinct_dst`]
    /// for label-indexed patterns. This is the quantity the planner
    /// minimises when ordering the joins (the scan `estimate` breaks
    /// ties); unlike `estimate` it is *not* an upper bound — the
    /// independence assumption can err in both directions.
    pub join_rows: usize,
    /// Variables of this pattern bound by earlier steps; the evaluator
    /// pushes them down as semi-join filters (and may expand from the
    /// bound node set instead of the static access path when smaller).
    pub pushdown: Vec<Arc<str>>,
}

/// A cost-ordered left-deep evaluation plan for one BGP.
#[derive(Debug, Clone, Default)]
pub struct BgpPlan {
    /// The evaluation steps, in execution order.
    pub steps: Vec<PatternPlan>,
    /// The pattern-shape fingerprint this plan was cached under
    /// ([`crate::bgp_shape`]); `0` for plans built outside a
    /// [`crate::PlanCache`].
    pub shape: u64,
    /// True when the plan was served from a [`crate::PlanCache`]
    /// rather than planned from scratch.
    pub cached: bool,
}

impl BgpPlan {
    /// Total estimated cardinality scanned across all steps.
    pub fn total_estimate(&self) -> usize {
        self.steps.iter().map(|s| s.estimate).sum()
    }
}

impl fmt::Display for BgpPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            write!(
                f,
                "step {}: pattern #{} via {} est {}",
                i + 1,
                s.pattern,
                s.access,
                s.estimate
            )?;
            if !s.pushdown.is_empty() {
                let vars: Vec<&str> = s.pushdown.iter().map(|v| v.as_ref()).collect();
                write!(f, " [pushdown: {}]", vars.join(", "))?;
            }
            write!(f, " → ~{} rows", s.join_rows)?;
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Returns the label/type key a node predicate pins, if any; the flag
/// is true for a label key (label conditions take precedence over type
/// conditions, mirroring `matching_nodes`).
fn node_key(pred: &Predicate) -> Option<(bool, &str)> {
    pred.eq_label()
        .map(|l| (true, l))
        .or_else(|| pred.eq_type().map(|t| (false, t)))
}

/// Upper-bound estimate of a node-index scan on one endpoint: the sum
/// of the candidate nodes' (combined) degrees — every emitted edge is
/// incident to a candidate, and incident-edge counts per direction are
/// bounded by the combined degree.
fn node_scan_estimate(g: &Graph, is_label: bool, key: &str) -> usize {
    let Some(l) = g.label_id(key) else { return 0 };
    let nodes = if is_label {
        g.nodes_with_label(l)
    } else {
        g.nodes_with_type(l)
    };
    nodes.iter().map(|&n| g.degree(n)).sum()
}

/// Chooses the access path and cardinality estimate of one pattern,
/// consulting the graph's [`cs_graph::Cardinalities`] snapshot.
pub fn choose_access(g: &Graph, p: &TriplePattern) -> (AccessPath, usize) {
    let card = g.cardinalities();
    // An edge-label equality always wins: the index yields exactly the
    // matching edges, and the estimate is the exact index size.
    if let Some(label) = p.edge.pred.eq_label() {
        let est = g.label_id(label).map_or(0, |l| card.edge_label_count(l));
        return (
            AccessPath::EdgeLabelIndex {
                label: label.to_string(),
            },
            est,
        );
    }
    // Endpoint indexes: pick the cheaper pinned side.
    let src = node_key(&p.src.pred).map(|(il, k)| (k, node_scan_estimate(g, il, k)));
    let dst = node_key(&p.dst.pred).map(|(il, k)| (k, node_scan_estimate(g, il, k)));
    let side = match (src, dst) {
        (Some((sk, se)), Some((_, de))) if se <= de => Some((true, sk, se)),
        (Some(_) | None, Some((dk, de))) => Some((false, dk, de)),
        (Some((sk, se)), None) => Some((true, sk, se)),
        (None, None) => None,
    };
    match side {
        Some((on_src, key, est)) => (
            AccessPath::NodeIndexScan {
                on_src,
                key: key.to_string(),
            },
            est,
        ),
        None => (AccessPath::FullScan, card.edges),
    }
}

/// Distinct-value estimate of variable `var`'s column in the table of
/// pattern `p` under `access` — the `V(col)` denominator of the join
/// selectivity formula. Label-indexed patterns use the collected
/// [`cs_graph::LabelCard::distinct_src`]/[`cs_graph::LabelCard::distinct_dst`]
/// statistics; otherwise the count is bounded by the table size and,
/// for node-valued columns, the node count. A variable occupying
/// several positions of the pattern takes the tightest bound.
fn distinct_values(
    g: &Graph,
    p: &TriplePattern,
    access: &AccessPath,
    est: usize,
    var: &str,
) -> usize {
    let card = g.cardinalities();
    let label_card = match access {
        AccessPath::EdgeLabelIndex { label } => {
            g.label_id(label).and_then(|l| card.edge_labels.get(&l))
        }
        _ => None,
    };
    let mut best: Option<usize> = None;
    let mut tighten = |d: usize| best = Some(best.map_or(d, |b: usize| b.min(d)));
    if p.src.var.as_ref() == var {
        tighten(label_card.map_or(est.min(card.nodes), |c| c.distinct_src));
    }
    if p.dst.var.as_ref() == var {
        tighten(label_card.map_or(est.min(card.nodes), |c| c.distinct_dst));
    }
    if p.edge.var.as_ref() == var {
        tighten(est); // every row carries a distinct edge
    }
    best.unwrap_or(est).max(1)
}

/// Plans a BGP: per-pattern access paths with estimates, ordered into a
/// cost-based left-deep sequence. The first step is the cheapest
/// pattern; each later step is the connected pattern minimising the
/// estimated rows of the accumulated join (`join_rows` — scan
/// `estimate` breaks ties), so a high-fanout join is deferred behind a
/// selective one even when their scan costs are equal. Disconnected
/// inputs (which [`crate::eval_bgp`] rejects anyway) fall back to the
/// global cheapest pattern.
pub fn plan_bgp(g: &Graph, bgp: &Bgp) -> BgpPlan {
    let n = bgp.patterns.len();
    let mut choices: Vec<(AccessPath, usize)> =
        bgp.patterns.iter().map(|p| choose_access(g, p)).collect();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut bound: Vec<Arc<str>> = Vec::new();
    let mut steps = Vec::with_capacity(n);
    // Estimated rows of the accumulated join so far.
    let mut prefix_rows: Option<f64> = None;
    while !remaining.is_empty() {
        let vars_of = |i: usize| -> Vec<Arc<str>> {
            let p = &bgp.patterns[i];
            vec![p.src.var.clone(), p.edge.var.clone(), p.dst.var.clone()]
        };
        let connected = |i: usize| vars_of(i).iter().any(|v| bound.contains(v));
        // Estimated rows after joining pattern `i` into the prefix:
        // |prefix| × estimate / Π V(shared column), independence
        // assumed; a cross join (no shared column) multiplies.
        let join_rows = |i: usize| -> usize {
            let (access, est) = &choices[i];
            match prefix_rows {
                None => *est,
                Some(r) => {
                    let mut shared: Vec<Arc<str>> = vars_of(i)
                        .into_iter()
                        .filter(|v| bound.contains(v))
                        .collect();
                    shared.sort();
                    shared.dedup();
                    let mut den = 1.0f64;
                    for v in &shared {
                        den *= distinct_values(g, &bgp.patterns[i], access, *est, v) as f64;
                    }
                    ((r * *est as f64) / den.max(1.0)).ceil() as usize
                }
            }
        };
        // Most selective connected pattern, else cheapest overall
        // (first step, or disconnected input).
        let pick = remaining
            .iter()
            .copied()
            .filter(|&i| bound.is_empty() || connected(i))
            .min_by_key(|&i| (join_rows(i), choices[i].1, i))
            .or_else(|| remaining.iter().copied().min_by_key(|&i| (choices[i].1, i)))
            // cs-lint: allow(L002): the while-guard keeps `remaining`
            // non-empty, so the unfiltered fallback always finds one.
            .unwrap();
        remaining.retain(|&i| i != pick);
        let rows = join_rows(pick);
        prefix_rows = Some(rows as f64);
        let (access, estimate) = std::mem::replace(
            &mut choices[pick],
            (AccessPath::FullScan, 0), // slot consumed
        );
        let pushdown: Vec<Arc<str>> = vars_of(pick)
            .into_iter()
            .filter(|v| bound.contains(v))
            .collect();
        for v in vars_of(pick) {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
        steps.push(PatternPlan {
            pattern: pick,
            access,
            estimate,
            join_rows: rows,
            pushdown,
        });
    }
    BgpPlan {
        steps,
        shape: 0,
        cached: false,
    }
}

/// Renders the plan of a BGP as a human-readable string — the
/// `EXPLAIN` surface of the engine.
pub fn explain_plan(g: &Graph, bgp: &Bgp) -> String {
    plan_bgp(g, bgp).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::Term;
    use cs_graph::{figure1, Predicate};

    #[test]
    fn fig1_query_prefers_edge_label_index() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::pred("x", Predicate::typed("entrepreneur")),
            Term::pred("e", Predicate::label("citizenOf")),
            Term::constant("USA", 0),
        );
        let plan = plan_bgp(&g, &b);
        assert_eq!(plan.steps.len(), 1);
        assert!(
            matches!(&plan.steps[0].access, AccessPath::EdgeLabelIndex { label } if label == "citizenOf"),
            "{plan}"
        );
        assert_eq!(plan.steps[0].estimate, 5); // 5 citizenOf edges
    }

    #[test]
    fn cheapest_pattern_goes_first() {
        let g = figure1();
        let mut b = Bgp::new();
        // Unconstrained pattern (est = |E|) then a label-indexed one
        // (est = 2): the plan must flip the order.
        b.push(Term::var("x"), Term::var("e1"), Term::var("y"));
        b.push(
            Term::var("x"),
            Term::pred("e2", Predicate::label("founded")),
            Term::var("z"),
        );
        let plan = plan_bgp(&g, &b);
        assert_eq!(plan.steps[0].pattern, 1);
        assert!(plan.steps[0].estimate < plan.steps[1].estimate);
        // The second step sees x bound and can push it down.
        assert!(plan.steps[1].pushdown.iter().any(|v| v.as_ref() == "x"));
    }

    #[test]
    fn later_steps_stay_connected() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::var("a"),
            Term::pred("e1", Predicate::label("citizenOf")),
            Term::var("b"),
        );
        b.push(
            Term::var("b"),
            Term::pred("e2", Predicate::label("locatedIn")),
            Term::var("c"),
        );
        b.push(
            Term::var("c"),
            Term::pred("e3", Predicate::label("founded")),
            Term::var("d"),
        );
        let plan = plan_bgp(&g, &b);
        // Whatever starts, each following step shares a variable with
        // the prefix.
        let mut bound: Vec<Arc<str>> = Vec::new();
        for (i, s) in plan.steps.iter().enumerate() {
            let p = &b.patterns[s.pattern];
            let vars = [&p.src.var, &p.edge.var, &p.dst.var];
            if i > 0 {
                assert!(
                    vars.iter().any(|v| bound.contains(v)),
                    "step {i} disconnected in {plan}"
                );
                assert!(!s.pushdown.is_empty());
            }
            bound.extend(vars.into_iter().cloned());
        }
    }

    /// A uniform-fanout graph on which the independence assumption is
    /// exact: 4 sources with 3 `p`-edges each (distinct_src = 4,
    /// 12 edges), every `p`-target carrying exactly one `q`-edge
    /// (distinct_src = 12). The `p ⋈ q` join estimate must equal the
    /// actual joined row count.
    fn uniform_join_graph() -> Graph {
        let mut b = cs_graph::GraphBuilder::new();
        for s in 0..4 {
            let src = b.add_node(&format!("s{s}"));
            for t in 0..3 {
                let mid = b.add_node(&format!("m{s}_{t}"));
                b.add_edge(src, "p", mid);
                let sink = b.add_node(&format!("z{s}_{t}"));
                b.add_edge(mid, "q", sink);
            }
        }
        b.freeze()
    }

    #[test]
    fn join_estimate_matches_actual_on_uniform_fanout() {
        let g = uniform_join_graph();
        let mut bgp = Bgp::new();
        bgp.push(
            Term::var("x"),
            Term::pred("e1", Predicate::label("p")),
            Term::var("y"),
        );
        bgp.push(
            Term::var("y"),
            Term::pred("e2", Predicate::label("q")),
            Term::var("z"),
        );
        let plan = plan_bgp(&g, &bgp);
        // Step 1: 12 p-rows. Step 2: 12 × 12 / distinct_src(q) = 12.
        assert_eq!(plan.steps[0].join_rows, 12, "{plan}");
        assert_eq!(plan.steps[1].join_rows, 12, "{plan}");
        let actual = crate::eval_bgp(&g, &bgp).len();
        assert_eq!(
            actual, plan.steps[1].join_rows,
            "estimate vs actual diverged on the uniform graph: {plan}"
        );
    }

    /// Two equal-cost candidate joins, one through a fan-out label
    /// (one distinct source feeding every edge), one through a 1:1
    /// label: the selectivity-aware planner must order the 1:1 join
    /// first even though the scan estimates tie.
    #[test]
    fn selective_join_ordered_before_fanout_join() {
        let mut b = cs_graph::GraphBuilder::new();
        let m0 = b.add_node("m0");
        let m1 = b.add_node("m1");
        for (i, m) in [m0, m1].iter().enumerate() {
            let s = b.add_node(&format!("s{i}"));
            b.add_edge(s, "a", *m);
        }
        // "fan": all 5 edges share the source m0 (distinct_src = 1).
        for i in 0..5 {
            let f = b.add_node(&format!("f{i}"));
            b.add_edge(m0, "fan", f);
        }
        // "uniq": 5 edges from 5 distinct sources (m0, m1, u2, u3, u4).
        for (i, src) in [m0, m1].into_iter().enumerate().take(2) {
            let u = b.add_node(&format!("ut{i}"));
            b.add_edge(src, "uniq", u);
        }
        for i in 2..5 {
            let s = b.add_node(&format!("us{i}"));
            let u = b.add_node(&format!("ut{i}"));
            b.add_edge(s, "uniq", u);
        }
        let g = b.freeze();

        let mut bgp = Bgp::new();
        bgp.push(
            Term::var("s"),
            Term::pred("e1", Predicate::label("a")),
            Term::var("y"),
        );
        bgp.push(
            Term::var("y"),
            Term::pred("e2", Predicate::label("fan")),
            Term::var("z"),
        );
        bgp.push(
            Term::var("y"),
            Term::pred("e3", Predicate::label("uniq")),
            Term::var("w"),
        );
        let plan = plan_bgp(&g, &bgp);
        assert_eq!(plan.steps[0].pattern, 0, "{plan}");
        assert_eq!(
            plan.steps[1].pattern, 2,
            "the uniq join (2 × 5 / 5 = 2 rows) must precede the fan \
             join (2 × 5 / 1 = 10 rows): {plan}"
        );
        assert_eq!(plan.steps[1].join_rows, 2, "{plan}");
        assert_eq!(plan.steps[2].join_rows, 10, "{plan}");
        // Estimate-vs-actual sanity: the uniq join's estimate is exact
        // (each `a`-target has exactly one uniq edge).
        let mut prefix = Bgp::new();
        prefix.push(
            Term::var("s"),
            Term::pred("e1", Predicate::label("a")),
            Term::var("y"),
        );
        prefix.push(
            Term::var("y"),
            Term::pred("e3", Predicate::label("uniq")),
            Term::var("w"),
        );
        assert_eq!(crate::eval_bgp(&g, &prefix).len(), 2);
    }

    #[test]
    fn missing_label_estimates_zero() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::var("x"),
            Term::pred("e", Predicate::label("noSuchLabel")),
            Term::var("y"),
        );
        let plan = plan_bgp(&g, &b);
        assert_eq!(plan.steps[0].estimate, 0);
    }

    #[test]
    fn display_mentions_access_paths() {
        let g = figure1();
        let mut b = Bgp::new();
        b.push(
            Term::var("x"),
            Term::pred("e", Predicate::label("citizenOf")),
            Term::var("y"),
        );
        b.push(Term::var("y"), Term::var("f"), Term::var("z"));
        let s = explain_plan(&g, &b);
        assert!(s.contains("EdgeLabelIndex(\"citizenOf\")"), "{s}");
        assert!(s.contains("FullScan"), "{s}");
        assert!(s.contains("pushdown: y"), "{s}");
    }
}
