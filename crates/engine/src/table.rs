//! Binding tables and the relational operators over them.
//!
//! The paper's evaluation strategy (§3) materialises each BGP's
//! embeddings in a table `B_i`, each CTP's results in a table `CTP_j`,
//! and computes the query as a projection over their natural join.
//! [`Table`] is that relation: named columns of [`Binding`]s.

use crate::binding::Binding;
use cs_graph::fxhash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// A relation over query variables.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column names (query variables), in row order.
    vars: Vec<Arc<str>>,
    /// Rows; each row has exactly `vars.len()` bindings.
    rows: Vec<Box<[Binding]>>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(vars: Vec<Arc<str>>) -> Self {
        Table {
            vars,
            rows: Vec::new(),
        }
    }

    /// Creates a table with schema built from `&str` names.
    pub fn with_columns(names: &[&str]) -> Self {
        Table::new(names.iter().map(|&n| Arc::from(n)).collect())
    }

    /// The schema.
    pub fn vars(&self) -> &[Arc<str>] {
        &self.vars
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column index of a variable.
    pub fn col(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v.as_ref() == var)
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the schema.
    pub fn push(&mut self, row: Box<[Binding]>) {
        assert_eq!(row.len(), self.vars.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Appends a row from a slice.
    pub fn push_row(&mut self, row: &[Binding]) {
        self.push(row.to_vec().into_boxed_slice());
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Binding]> {
        self.rows.iter().map(|r| r.as_ref())
    }

    /// One row by index.
    pub fn row(&self, i: usize) -> &[Binding] {
        &self.rows[i]
    }

    /// All bindings of one column (deduplicated, order of first
    /// occurrence). This is the projection π_v used to derive seed sets.
    pub fn distinct_column(&self, var: &str) -> Vec<Binding> {
        let Some(c) = self.col(var) else {
            return Vec::new();
        };
        let mut seen = cs_graph::fxhash::FxHashSet::default();
        let mut out = Vec::new();
        for r in &self.rows {
            if seen.insert(r[c]) {
                out.push(r[c]);
            }
        }
        out
    }

    /// Projection onto a subset of variables (duplicates preserved;
    /// use [`Table::distinct`] after if set semantics are needed).
    ///
    /// # Panics
    /// Panics if a requested variable is absent.
    pub fn project(&self, keep: &[&str]) -> Table {
        let cols: Vec<usize> = keep
            .iter()
            .map(|v| {
                self.col(v)
                    // cs-lint: allow(L002): documented `# Panics`
                    // contract — projecting an absent variable is a
                    // caller bug, not a runtime condition.
                    .unwrap_or_else(|| panic!("unknown variable {v}"))
            })
            .collect();
        let vars = cols.iter().map(|&c| self.vars[c].clone()).collect();
        let rows = self
            .rows
            .iter()
            .map(|r| cols.iter().map(|&c| r[c]).collect())
            .collect();
        Table { vars, rows }
    }

    /// Removes duplicate rows (first occurrence kept).
    pub fn distinct(mut self) -> Table {
        let mut seen = cs_graph::fxhash::FxHashSet::default();
        self.rows.retain(|r| seen.insert(r.clone()));
        self
    }

    /// Keeps rows satisfying `pred`.
    pub fn select<F: FnMut(&[Binding]) -> bool>(mut self, mut pred: F) -> Table {
        self.rows.retain(|r| pred(r));
        self
    }

    /// Truncates to at most `n` rows.
    pub fn limit(mut self, n: usize) -> Table {
        self.rows.truncate(n);
        self
    }

    /// Natural join on all shared variables; a cartesian product when
    /// none are shared. Hash join: the smaller input builds the table.
    pub fn natural_join(&self, other: &Table) -> Table {
        // Determine shared variables and output schema.
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.col(v).map(|j| (i, j)))
            .collect();

        let mut out_vars: Vec<Arc<str>> = self.vars.clone();
        let other_extra: Vec<usize> = (0..other.vars.len())
            .filter(|&j| !shared.iter().any(|&(_, sj)| sj == j))
            .collect();
        out_vars.extend(other_extra.iter().map(|&j| other.vars[j].clone()));
        let mut out = Table::new(out_vars);

        if shared.is_empty() {
            for l in &self.rows {
                for r in &other.rows {
                    let mut row = Vec::with_capacity(l.len() + other_extra.len());
                    row.extend_from_slice(l);
                    row.extend(other_extra.iter().map(|&j| r[j]));
                    out.push(row.into_boxed_slice());
                }
            }
            return out;
        }

        // Build on the smaller side.
        let build_left = self.rows.len() <= other.rows.len();
        let (build, probe) = if build_left {
            (self, other)
        } else {
            (other, self)
        };
        let key_cols_build: Vec<usize> = if build_left {
            shared.iter().map(|&(i, _)| i).collect()
        } else {
            shared.iter().map(|&(_, j)| j).collect()
        };
        let key_cols_probe: Vec<usize> = if build_left {
            shared.iter().map(|&(_, j)| j).collect()
        } else {
            shared.iter().map(|&(i, _)| i).collect()
        };

        let mut index: FxHashMap<Vec<Binding>, Vec<usize>> = FxHashMap::default();
        for (ri, r) in build.rows.iter().enumerate() {
            let key: Vec<Binding> = key_cols_build.iter().map(|&c| r[c]).collect();
            index.entry(key).or_default().push(ri);
        }

        for pr in &probe.rows {
            let key: Vec<Binding> = key_cols_probe.iter().map(|&c| pr[c]).collect();
            let Some(matches) = index.get(&key) else {
                continue;
            };
            for &bi in matches {
                let br = &build.rows[bi];
                let (l, r) = if build_left { (br, pr) } else { (pr, br) };
                let mut row = Vec::with_capacity(self.vars.len() + other_extra.len());
                row.extend_from_slice(l);
                row.extend(other_extra.iter().map(|&j| r[j]));
                out.push(row.into_boxed_slice());
            }
        }
        out
    }

    /// Sorts rows by a key extracted per row (stable).
    pub fn sort_by_key<K: Ord, F: FnMut(&[Binding]) -> K>(mut self, mut f: F) -> Table {
        self.rows.sort_by_key(|r| f(r));
        self
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}",
            self.vars
                .iter()
                .map(|v| v.as_ref())
                .collect::<Vec<_>>()
                .join("\t")
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{}",
                r.iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join("\t")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_graph::NodeId;

    fn n(i: u32) -> Binding {
        Binding::Node(NodeId(i))
    }

    fn table(names: &[&str], rows: &[&[Binding]]) -> Table {
        let mut t = Table::with_columns(names);
        for r in rows {
            t.push_row(r);
        }
        t
    }

    #[test]
    fn join_on_shared_variable() {
        let a = table(&["x", "y"], &[&[n(1), n(2)], &[n(3), n(4)]]);
        let b = table(&["y", "z"], &[&[n(2), n(9)], &[n(2), n(8)], &[n(5), n(7)]]);
        let j = a.natural_join(&b);
        assert_eq!(
            j.vars().iter().map(|v| v.as_ref()).collect::<Vec<_>>(),
            ["x", "y", "z"]
        );
        assert_eq!(j.len(), 2);
        let zs: Vec<_> = j.distinct_column("z");
        assert!(zs.contains(&n(9)) && zs.contains(&n(8)));
    }

    #[test]
    fn join_without_shared_is_product() {
        let a = table(&["x"], &[&[n(1)], &[n(2)]]);
        let b = table(&["y"], &[&[n(3)], &[n(4)], &[n(5)]]);
        assert_eq!(a.natural_join(&b).len(), 6);
    }

    #[test]
    fn join_on_two_shared() {
        let a = table(&["x", "y"], &[&[n(1), n(2)], &[n(1), n(3)]]);
        let b = table(&["y", "x"], &[&[n(2), n(1)], &[n(3), n(9)]]);
        let j = a.natural_join(&b);
        assert_eq!(j.len(), 1);
        assert_eq!(j.row(0), &[n(1), n(2)]);
    }

    #[test]
    fn empty_join() {
        let a = table(&["x"], &[&[n(1)]]);
        let b = table(&["x"], &[]);
        assert_eq!(a.natural_join(&b).len(), 0);
    }

    #[test]
    fn project_and_distinct() {
        let t = table(&["x", "y"], &[&[n(1), n(2)], &[n(1), n(3)], &[n(1), n(2)]]);
        let p = t.project(&["x"]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.distinct().len(), 1);
    }

    #[test]
    fn distinct_column_order() {
        let t = table(&["x"], &[&[n(2)], &[n(1)], &[n(2)]]);
        assert_eq!(t.distinct_column("x"), vec![n(2), n(1)]);
        assert!(t.distinct_column("nope").is_empty());
    }

    #[test]
    fn select_limit_sort() {
        let t = table(&["x"], &[&[n(3)], &[n(1)], &[n(2)]]);
        let t = t.sort_by_key(|r| r[0]);
        assert_eq!(t.row(0), &[n(1)]);
        let t = t.select(|r| r[0] != n(2));
        assert_eq!(t.len(), 2);
        let t = t.limit(1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::with_columns(&["x", "y"]);
        t.push_row(&[n(1)]);
    }

    #[test]
    fn display_renders() {
        let t = table(&["x"], &[&[n(1)]]);
        let s = t.to_string();
        assert!(s.contains('x') && s.contains("n1"));
    }
}
