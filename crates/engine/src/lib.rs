//! # cs-engine — conjunctive graph query engine substrate
//!
//! The paper delegates BGP evaluation and final joins to PostgreSQL
//! (§5.1); this crate is the equivalent in-memory substrate: binding
//! tables with relational operators (selection, projection, natural
//! hash join, distinct, sort, limit) and a BGP matcher driven by a
//! statistics-based planner — per-pattern [`AccessPath`]s with
//! cardinality estimates from the graph's cached
//! [`cs_graph::Cardinalities`] snapshot, ordered into a cost-based
//! left-deep join plan with bound-variable pushdown ([`plan_bgp`],
//! [`explain_plan`]).
//!
//! ```
//! use cs_engine::{Bgp, Term, eval_bgp};
//! use cs_graph::{figure1, Predicate};
//!
//! let g = figure1();
//! let mut bgp = Bgp::new();
//! bgp.push(
//!     Term::pred("x", Predicate::typed("entrepreneur")),
//!     Term::pred("e", Predicate::label("citizenOf")),
//!     Term::constant("France", 0),
//! );
//! let table = eval_bgp(&g, &bgp);
//! assert_eq!(table.len(), 2); // Alice, Doug
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bgp;
mod binding;
mod cache;
mod plan;
mod table;

pub use bgp::{
    eval_bgp, eval_bgp_greedy, eval_bgp_with_plan, pattern_components, Bgp, Term, TriplePattern,
};
pub use binding::Binding;
pub use cache::{bgp_shape, PlanCache};
pub use plan::{choose_access, explain_plan, plan_bgp, AccessPath, BgpPlan, PatternPlan};
pub use table::Table;
