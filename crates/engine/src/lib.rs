//! # cs-engine — conjunctive graph query engine substrate
//!
//! The paper delegates BGP evaluation and final joins to PostgreSQL
//! (§5.1); this crate is the equivalent in-memory substrate: binding
//! tables with relational operators (selection, projection, natural
//! hash join, distinct, sort, limit) and a BGP matcher with index-backed
//! access paths and a greedy left-deep join order.
//!
//! ```
//! use cs_engine::{Bgp, Term, eval_bgp};
//! use cs_graph::{figure1, Predicate};
//!
//! let g = figure1();
//! let mut bgp = Bgp::new();
//! bgp.push(
//!     Term::pred("x", Predicate::typed("entrepreneur")),
//!     Term::pred("e", Predicate::label("citizenOf")),
//!     Term::constant("France", 0),
//! );
//! let table = eval_bgp(&g, &bgp);
//! assert_eq!(table.len(), 2); // Alice, Doug
//! ```

#![warn(missing_docs)]

mod bgp;
mod binding;
mod table;

pub use bgp::{eval_bgp, Bgp, Term, TriplePattern};
pub use binding::Binding;
pub use table::Table;
