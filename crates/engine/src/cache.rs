//! Cross-query BGP plan caching, keyed by pattern *shape*.
//!
//! The paper's Fig. 13 workload runs hundreds of structurally
//! identical queries; planning each from scratch repeats the same
//! cost-ordering work. A [`PlanCache`] amortises it: each BGP is
//! fingerprinted by [`bgp_shape`] — predicates (labels, types, property
//! conditions) taken literally, variable names canonicalised to
//! first-occurrence indices — so two queries that differ only in how
//! their variables are spelled share one cached [`BgpPlan`].
//!
//! A cached plan's step order, access paths, and estimates transfer
//! directly (they depend only on the shape and the graph's cardinality
//! snapshot); the per-step `pushdown` variable lists are re-derived
//! against the concrete BGP on every hit, so `EXPLAIN` output always
//! names the instance's variables.
//!
//! The cache is deliberately tied to **one graph**: estimates baked
//! into cached plans come from that graph's [`cs_graph::Cardinalities`]
//! snapshot. Callers (e.g. `cs_eql::Session`) own one cache per graph.

use crate::bgp::{Bgp, TriplePattern};
use crate::plan::{plan_bgp, BgpPlan, PatternPlan};
use cs_graph::fxhash::fx_hash_one;
use cs_graph::{CmpOp, Graph, Predicate, PropRef, Value};
use std::sync::Arc;

/// Fingerprints one predicate into the token stream: every condition's
/// property, operator, and constant participate, so two BGPs share a
/// shape only when their predicates are syntactically identical (up to
/// condition order as written).
fn predicate_tokens(p: &Predicate, out: &mut Vec<u64>) {
    out.push(p.conditions.len() as u64);
    for c in &p.conditions {
        match &c.prop {
            PropRef::Label => out.push(1),
            PropRef::Type => out.push(2),
            PropRef::Named(name) => {
                out.push(3);
                out.push(fx_hash_one(&name.as_str()));
            }
        }
        out.push(match c.op {
            CmpOp::Eq => 10,
            CmpOp::Lt => 11,
            CmpOp::Le => 12,
            CmpOp::Like => 13,
        });
        match &c.constant {
            Value::Str(s) => {
                out.push(20);
                out.push(fx_hash_one(&s.as_ref()));
            }
            Value::Int(i) => {
                out.push(21);
                out.push(*i as u64);
            }
            Value::Float(f) => {
                out.push(22);
                out.push(f.to_bits());
            }
        }
    }
}

/// The shape fingerprint of a BGP: labels/types/conditions taken
/// literally, variable names replaced by their first-occurrence index.
/// Structurally identical BGPs — same patterns in the same order, same
/// predicates, same variable-sharing structure — hash equal regardless
/// of how their variables are named, which is exactly the equivalence
/// class under which a [`BgpPlan`] transfers between queries.
pub fn bgp_shape(bgp: &Bgp) -> u64 {
    let mut names: Vec<&Arc<str>> = Vec::new();
    let mut tokens: Vec<u64> = Vec::with_capacity(bgp.patterns.len() * 12);
    tokens.push(bgp.patterns.len() as u64);
    for p in &bgp.patterns {
        for t in [&p.src, &p.edge, &p.dst] {
            let id = match names.iter().position(|v| **v == t.var) {
                Some(i) => i,
                None => {
                    names.push(&t.var);
                    names.len() - 1
                }
            };
            tokens.push(id as u64);
            predicate_tokens(&t.pred, &mut tokens);
        }
    }
    fx_hash_one(&tokens)
}

/// Re-derives the per-step pushdown variable lists of a cached plan
/// against a concrete BGP, keeping step order, access paths, and
/// estimates. Shape equality guarantees the variable-sharing structure
/// matches, so the rebound plan is exactly what [`plan_bgp`] would
/// have produced for this instance.
fn rebind(plan: &BgpPlan, bgp: &Bgp) -> BgpPlan {
    let mut bound: Vec<Arc<str>> = Vec::new();
    let steps = plan
        .steps
        .iter()
        .map(|s| {
            let p: &TriplePattern = &bgp.patterns[s.pattern];
            let vars = [p.src.var.clone(), p.edge.var.clone(), p.dst.var.clone()];
            let pushdown: Vec<Arc<str>> =
                vars.iter().filter(|v| bound.contains(v)).cloned().collect();
            for v in vars {
                if !bound.contains(&v) {
                    bound.push(v);
                }
            }
            PatternPlan {
                pattern: s.pattern,
                access: s.access.clone(),
                estimate: s.estimate,
                join_rows: s.join_rows,
                pushdown,
            }
        })
        .collect();
    BgpPlan {
        steps,
        shape: plan.shape,
        cached: true,
    }
}

/// The label vocabulary a cached plan depends on: the fx-hashes of
/// every label/type string constant in the BGP's predicates (a
/// conservative superset of what the plan's estimates used), plus a
/// wildcard flag for non-equality label predicates (`LIKE` globs)
/// whose vocabulary can't be enumerated.
fn label_footprint(bgp: &Bgp) -> (Vec<u64>, bool) {
    let mut fp = Vec::new();
    let mut wildcard = false;
    for p in &bgp.patterns {
        for t in [&p.src, &p.edge, &p.dst] {
            for c in &t.pred.conditions {
                if matches!(c.prop, PropRef::Label | PropRef::Type) {
                    match (&c.op, &c.constant) {
                        (CmpOp::Eq, Value::Str(s)) => fp.push(fx_hash_one(&s.as_ref())),
                        _ => wildcard = true,
                    }
                }
            }
        }
    }
    fp.sort_unstable();
    fp.dedup();
    (fp, wildcard)
}

#[derive(Debug)]
struct CacheEntry {
    shape: u64,
    plan: BgpPlan,
    /// See [`label_footprint`].
    footprint: Vec<u64>,
    wildcard: bool,
}

/// An LRU cache of [`BgpPlan`]s keyed by [`bgp_shape`], with hit/miss
/// counters. Lookup and insertion are O(len) — fine for the dozens of
/// distinct shapes a query stream presents.
///
/// Live graphs invalidate selectively: each entry records the label
/// vocabulary its shape constrains on, and
/// [`PlanCache::invalidate_labels`] drops only entries whose footprint
/// meets a mutated label (label-free shapes keep their plans — their
/// estimates drift but their step order stays valid).
#[derive(Debug, Default)]
pub struct PlanCache {
    /// Most recently used last.
    entries: Vec<CacheEntry>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans. Capacity `0` disables
    /// caching (every lookup plans from scratch and counts a miss).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: Vec::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the plan for `bgp`'s shape, planning and caching it on
    /// a miss. Hits return the cached step order with pushdown lists
    /// rebound to `bgp`'s variable names and `cached` set.
    pub fn plan(&mut self, g: &Graph, bgp: &Bgp) -> BgpPlan {
        let shape = bgp_shape(bgp);
        let pos = self.entries.iter().position(|e| {
            // The length guard makes a (astronomically unlikely) hash
            // collision degrade to a miss instead of a wrong plan.
            e.shape == shape && e.plan.steps.len() == bgp.patterns.len()
        });
        if let Some(pos) = pos {
            let entry = self.entries.remove(pos);
            let plan = rebind(&entry.plan, bgp);
            self.entries.push(entry);
            self.hits += 1;
            return plan;
        }
        self.misses += 1;
        let mut plan = plan_bgp(g, bgp);
        plan.shape = shape;
        if self.capacity > 0 {
            if self.entries.len() >= self.capacity {
                self.entries.remove(0);
            }
            let (footprint, wildcard) = label_footprint(bgp);
            self.entries.push(CacheEntry {
                shape,
                plan: plan.clone(),
                footprint,
                wildcard,
            });
        }
        plan
    }

    /// Drops every cached plan whose label footprint meets one of
    /// `labels` (and every wildcard entry) — the selective-invalidation
    /// hook a graph mutation batch drives with its touched-label set.
    /// Plans whose shapes never constrain on a mutated label survive.
    /// Returns the number of entries dropped.
    pub fn invalidate_labels<'a>(&mut self, labels: impl IntoIterator<Item = &'a str>) -> usize {
        let hashes: Vec<u64> = labels.into_iter().map(|l| fx_hash_one(&l)).collect();
        if hashes.is_empty() {
            return 0;
        }
        let before = self.entries.len();
        self.entries
            .retain(|e| !e.wildcard && !e.footprint.iter().any(|h| hashes.contains(h)));
        before - self.entries.len()
    }

    /// Drops every cached plan (full invalidation — e.g. the session's
    /// graph was swapped wholesale).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Lookups served from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to plan from scratch.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::Term;
    use cs_graph::figure1;

    fn star(vars: [&str; 4]) -> Bgp {
        let [c, a, b, d] = vars;
        let mut bgp = Bgp::new();
        bgp.push(
            Term::var(c),
            Term::pred("e1", Predicate::label("citizenOf")),
            Term::var(a),
        );
        bgp.push(
            Term::var(c),
            Term::pred("e2", Predicate::label("founded")),
            Term::var(b),
        );
        bgp.push(Term::var(c), Term::var("e3"), Term::var(d));
        bgp
    }

    #[test]
    fn shape_ignores_variable_names() {
        let a = star(["c", "a", "b", "d"]);
        let b = star(["center", "p", "q", "r"]);
        assert_eq!(bgp_shape(&a), bgp_shape(&b));
    }

    #[test]
    fn shape_distinguishes_labels_and_sharing() {
        let a = star(["c", "a", "b", "d"]);
        // Different edge label ⇒ different shape.
        let mut other_label = Bgp::new();
        other_label.push(
            Term::var("c"),
            Term::pred("e1", Predicate::label("locatedIn")),
            Term::var("a"),
        );
        other_label.push(
            Term::var("c"),
            Term::pred("e2", Predicate::label("founded")),
            Term::var("b"),
        );
        other_label.push(Term::var("c"), Term::var("e3"), Term::var("d"));
        assert_ne!(bgp_shape(&a), bgp_shape(&other_label));
        // Different variable-sharing structure (chain, not star) ⇒
        // different shape, even with identical predicates.
        let mut chain = Bgp::new();
        chain.push(
            Term::var("c"),
            Term::pred("e1", Predicate::label("citizenOf")),
            Term::var("a"),
        );
        chain.push(
            Term::var("a"),
            Term::pred("e2", Predicate::label("founded")),
            Term::var("b"),
        );
        chain.push(Term::var("b"), Term::var("e3"), Term::var("d"));
        assert_ne!(bgp_shape(&a), bgp_shape(&chain));
    }

    #[test]
    fn hit_rebinds_pushdown_to_instance_variables() {
        let g = figure1();
        let mut cache = PlanCache::new(8);
        let cold = cache.plan(&g, &star(["c", "a", "b", "d"]));
        assert!(!cold.cached);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let warm = cache.plan(&g, &star(["hub", "x", "y", "z"]));
        assert!(warm.cached);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Same step order and estimates…
        let order: Vec<usize> = cold.steps.iter().map(|s| s.pattern).collect();
        let order2: Vec<usize> = warm.steps.iter().map(|s| s.pattern).collect();
        assert_eq!(order, order2);
        // …but pushdown names belong to the new query.
        let mentions_hub = warm
            .steps
            .iter()
            .any(|s| s.pushdown.iter().any(|v| v.as_ref() == "hub"));
        assert!(mentions_hub, "{warm}");
        for s in &warm.steps {
            assert!(s.pushdown.iter().all(|v| v.as_ref() != "c"), "{warm}");
        }
        // The rebound plan matches a from-scratch plan exactly.
        let fresh = plan_bgp(&g, &star(["hub", "x", "y", "z"]));
        for (ws, fs) in warm.steps.iter().zip(&fresh.steps) {
            assert_eq!(ws.pattern, fs.pattern);
            assert_eq!(ws.access, fs.access);
            assert_eq!(ws.estimate, fs.estimate);
            assert_eq!(ws.pushdown, fs.pushdown);
        }
    }

    #[test]
    fn lru_evicts_oldest() {
        let g = figure1();
        let mut cache = PlanCache::new(2);
        let labels = ["citizenOf", "founded", "locatedIn"];
        let one = |l: &str| {
            let mut b = Bgp::new();
            b.push(
                Term::var("x"),
                Term::pred("e", Predicate::label(l)),
                Term::var("y"),
            );
            b
        };
        for l in labels {
            cache.plan(&g, &one(l));
        }
        assert_eq!(cache.len(), 2);
        // "citizenOf" was evicted: re-planning it misses.
        cache.plan(&g, &one(labels[0]));
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn invalidate_drops_only_touching_shapes() {
        let g = figure1();
        let mut cache = PlanCache::new(8);
        let one = |l: &str| {
            let mut b = Bgp::new();
            b.push(
                Term::var("x"),
                Term::pred("e", Predicate::label(l)),
                Term::var("y"),
            );
            b
        };
        cache.plan(&g, &one("citizenOf"));
        cache.plan(&g, &one("founded"));
        // A label-free shape has an empty footprint and must survive.
        let mut free = Bgp::new();
        free.push(Term::var("x"), Term::var("e"), Term::var("y"));
        cache.plan(&g, &free);
        assert_eq!(cache.len(), 3);

        assert_eq!(cache.invalidate_labels(["citizenOf"]), 1);
        assert_eq!(cache.len(), 2);
        // The untouched label still hits; the invalidated one misses.
        cache.plan(&g, &one("founded"));
        assert_eq!(cache.hits(), 1);
        cache.plan(&g, &one("citizenOf"));
        assert_eq!(cache.misses(), 4);
        // Unknown labels drop nothing.
        assert_eq!(cache.invalidate_labels(["noSuchLabel"]), 0);
        // Empty label set is a no-op.
        assert_eq!(cache.invalidate_labels([]), 0);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidate_drops_wildcard_label_predicates() {
        let g = figure1();
        let mut cache = PlanCache::new(8);
        let mut b = Bgp::new();
        b.push(
            Term::var("x"),
            Term::pred("e", Predicate::label_like("citizen*")),
            Term::var("y"),
        );
        cache.plan(&g, &b);
        // A glob's vocabulary can't be enumerated: any mutated label
        // must drop it.
        assert_eq!(cache.invalidate_labels(["unrelated"]), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let g = figure1();
        let mut cache = PlanCache::new(0);
        let bgp = star(["c", "a", "b", "d"]);
        cache.plan(&g, &bgp);
        cache.plan(&g, &bgp);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(cache.is_empty());
    }
}
