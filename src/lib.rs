//! # connection-search
//!
//! A Rust reproduction of *Integrating Connection Search in Graph
//! Queries* (Anadiotis, Manolescu, Mohanty — ICDE 2023): an Extended
//! Query Language (EQL) combining Basic Graph Patterns with Connecting
//! Tree Patterns (CTPs), a family of connection-search algorithms
//! (BFT, GAM, ESP, MoESP, LESP, **MoLESP**), and an in-memory
//! conjunctive graph-query engine substrate.
//!
//! This crate re-exports the public APIs of the workspace crates:
//!
//! * [`graph`] — labelled multigraph model, predicates, generators
//! * [`engine`] — conjunctive (BGP) query engine
//! * [`core`] — CTP search algorithms and baselines
//! * [`eql`] — the extended query language: parser, planner, executor
//! * [`server`] — `csqd`, the multi-tenant query server and its client
//!
//! ## Quickstart
//!
//! Queries run through a [`Session`], which caches BGP plans across
//! queries (keyed by pattern shape) and supports prepared queries,
//! cross-query batching, and streaming results:
//!
//! ```
//! use connection_search::graph::figure1;
//! use connection_search::Session;
//!
//! let g = figure1();
//! let session = Session::new(&g);
//! let q = r#"
//!     SELECT x, y, z, w WHERE {
//!         (x : type = "entrepreneur", "citizenOf", "USA")
//!         (y : type = "entrepreneur", "citizenOf", "France")
//!         (z : type = "politician",  "citizenOf", "France")
//!         CONNECT(x, y, z -> w)
//!     }
//! "#;
//! let prepared = session.prepare(q).expect("valid query");
//! let result = session.execute(&prepared).expect("executes");
//! assert!(result.rows() > 0);
//! ```

pub use cs_bench as bench;
pub use cs_core as core;
pub use cs_engine as engine;
pub use cs_eql as eql;
pub use cs_graph as graph;
pub use cs_server as server;

pub use cs_eql::{PreparedQuery, ResultStream, Session};
