//! `csq` — the connection-search query CLI.
//!
//! ```text
//! csq <graph-source> <query-or-@file> [--algorithm NAME] [--timeout MS]
//!     [--timeout-ms N] [--threads N] [--search-threads N]
//!     [--result-cache on|off] [--result-cache-capacity N] [--stats]
//!     [--explain] [--batch] [--stream]
//! csq --graph <file.csg> <query-or-@file> [...]   # same, source as a flag
//! csq snapshot save <gen-spec|graph-file> <out.csg> [--no-stats]
//! csq snapshot inspect <file.csg>
//! csq connect <addr> <query-or-@file> [--tenant T] [--timeout-ms N]
//!     [--batch] [--cancel-after-ms N] [--stats]
//! csq bench-serve <addr> <query-or-@file> [--qps N] [--duration-ms N]
//!     [--connections K] [--tenant T] [--timeout-ms N] [--label NAME]
//! csq watch <graph-source> <query-or-@file> [--script FILE] [--stats]
//!     [--threads N] [--search-threads N] [--result-cache on|off]
//! ```
//!
//! A *graph source* is `--demo` (the Figure 1 graph), a `.csg` binary
//! snapshot (`cs_graph::snapshot`), a generator spec
//! (`gen:scale_free:nodes=2000,seed=7`, see
//! `cs_graph::generate::from_spec`), or a tab-separated triples file
//! (`cs_graph::ntriples`). Snapshots loaded through `--graph`/a `.csg`
//! source carry their statistics section, so the BGP planner starts
//! warm — no first-query stats pass.
//!
//! The dataset workflow: `csq snapshot save` materialises a generator
//! spec or parsed graph file as a CSG2 snapshot (statistics sidecar
//! included unless `--no-stats`); `csq snapshot inspect` prints its
//! sections, counts, and whether statistics are present; `--graph
//! file.csg` then serves queries from the pinned dataset.
//!
//! `--threads N` sets the worker budget for evaluating independent
//! CTPs in parallel (0 = available parallelism); `--search-threads N`
//! additionally splits each *single* connection search over N
//! intra-search workers on the partitioned-history engine (0 = divide
//! the `--threads` budget over the concurrent CTPs); `--explain`
//! prints the access-path plan of each BGP (with plan-cache hits)
//! before the results; `--batch` treats the query input as several
//! `;`-separated queries, executed through one [`Session`] so
//! structurally identical BGPs share cached plans and all CTP jobs go
//! through a single parallel dispatch; `--stream` pulls a single-CTP
//! SELECT through [`Session::execute_streaming`], printing each
//! connecting tree as the search produces it.
//!
//! `--result-cache off` disables the session's cross-query result
//! cache (`cs_eql::result_cache`); `--result-cache-capacity N` sets
//! how many CTP result sets the LRU retains (default
//! `DEFAULT_RESULT_CACHE_CAPACITY`). `--stats` then reports the hit
//! / miss / subsumed / trees-filtered counters per query, and
//! `--explain` additionally prints one `magic seeds:` line per seed
//! set narrowed by shared-variable (magic-set) intersection.
//!
//! `--timeout-ms N` is the *hard* per-query deadline
//! ([`ExecOptions::deadline`]): unlike the per-CTP soft `--timeout`
//! (which keeps the partial results found in time), an exceeded
//! deadline fails the query with a typed `DeadlineExceeded` — a
//! one-line `error: deadline exceeded` and a non-zero exit.
//!
//! `csq watch` registers one or more standing `SELECT` queries
//! (`;`-separated, like `--batch`) over a live graph and drives it
//! with a mutation script (`--script FILE`, or stdin). Script lines —
//! `node <label> [type…]`, `edge <src> <label> <dst>`,
//! `del <src> <label> <dst>`, and `commit` — accumulate into batches;
//! each `commit` applies the batch through [`Session::mutate`] (one
//! generation bump), polls every watch, and prints the per-watch
//! result deltas as `watch I + row` / `watch I - row` lines. Node
//! references are exact node labels or raw `n<ID>` ids; an `edge` may
//! reference nodes introduced by earlier `node` lines of the *same*
//! batch, while `del` resolves against the last committed state.
//! `--stats` additionally reports on stderr how each unchanged poll
//! was decided (generation check, label footprint, delta reach probe
//! — see `cs_eql::watch`).
//!
//! `csq connect` runs the same query loop against a `csqd` server
//! (`cs_server::Client`), printing results identically to local mode;
//! `--cancel-after-ms N` fires a cooperative cancel frame mid-query
//! from a second socket handle. `csq bench-serve` is an open-loop
//! load generator: it schedules requests at a target QPS across K
//! connections, collects a latency histogram, reports p50/p95/p99 and
//! achieved QPS, and appends the percentiles to the `CS_BENCH_JSON`
//! sink (cs-bench/1 records) when that is set.
//!
//! The exit code is non-zero when the graph cannot be loaded, a
//! snapshot cannot be saved or read, a query fails to parse, or
//! execution errors — including any query of a batch. I/O and decode
//! failures are one-line `error:` messages, never panics.

use connection_search::bench::BenchRecord;
use connection_search::core::Algorithm;
use connection_search::eql::{EqlError, ExecOptions, QueryResult, ResultCacheMode, WatchSkip};
use connection_search::graph::generate::from_spec;
use connection_search::graph::{binfmt, figure1, ntriples, snapshot, Graph, Mutation, NodeId};
use connection_search::server::{Client, ClientError, ErrorCode, LatencyHistogram, RequestHeader};
use connection_search::Session;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage: csq <graph-source|--demo> <query|@query-file> \
         [--algorithm NAME] [--timeout MS] [--timeout-ms N] [--threads N] \
         [--search-threads N] [--result-cache on|off] \
         [--result-cache-capacity N] [--stats] [--explain] [--batch] [--stream]\n       \
         csq --graph <file.csg> <query|@query-file> [...]\n       \
         csq snapshot save <gen-spec|graph-file> <out.csg> [--no-stats]\n       \
         csq snapshot inspect <file.csg>\n       \
         csq connect <host:port> <query|@query-file> [--tenant T] \
         [--timeout-ms N] [--batch] [--cancel-after-ms N] [--stats]\n       \
         csq bench-serve <host:port> <query|@query-file> [--qps N] \
         [--duration-ms N] [--connections K] [--tenant T] [--timeout-ms N] \
         [--label NAME]\n       \
         csq watch <graph-source> <query|@query-file> [--script FILE] \
         [--stats] [--threads N] [--search-threads N] [--result-cache on|off]\n       \
         csq <graph-file> --snapshot <out.csg>   (legacy alias of `snapshot save`)\n\
         graph sources: --demo | file.csg | gen:<family:key=value,...> | triples file"
    );
    ExitCode::from(2)
}

/// Prints a one-line error and returns the failure exit code.
fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Prints a query-execution failure: the typed control errors
/// (deadline, cancellation) are plain one-line `error:` messages; real
/// query errors keep the `query error:` prefix.
fn report_query_error(e: &EqlError) {
    match e {
        EqlError::DeadlineExceeded | EqlError::Cancelled => eprintln!("error: {e}"),
        other => eprintln!("query error: {other}"),
    }
}

/// Reads `<query|@query-file>` input.
fn read_query_arg(arg: &str) -> Result<String, String> {
    match arg.strip_prefix('@') {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read query file {path}: {e}"))
        }
        None => Ok(arg.to_string()),
    }
}

/// Parses the numeric value of `flag` at `args[i + 1]`. Missing or
/// non-numeric values are a clear one-line error, not a usage dump (or
/// worse, a panic).
fn numeric_flag<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String> {
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("{flag} expects a number, but none was given"));
    };
    raw.parse::<T>()
        .map_err(|_| format!("{flag} expects a number, got {raw:?}"))
}

/// Builds a graph from a source string: `--demo`, a generator spec
/// (`gen:` prefixed, or a bare spec that names no existing file), a
/// `.csg` snapshot, or a triples file.
fn load_graph(source: &str) -> Result<Graph, String> {
    if source == "--demo" {
        return Ok(figure1());
    }
    if let Some(spec) = source.strip_prefix("gen:") {
        return from_spec(spec).map_err(|e| e.to_string());
    }
    if !std::path::Path::new(source).exists() {
        // Convenience: a known generator family without the gen:
        // prefix. Anything the spec parser does not recognise as a
        // family falls through to the (clearer) file-read error; a
        // known family with bad arguments reports the spec error.
        match from_spec(source) {
            Ok(g) => return Ok(g),
            Err(connection_search::graph::generate::SpecError::UnknownFamily(_)) => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    if source.ends_with(".csg") {
        return snapshot::load_from(source).map_err(|e| e.to_string());
    }
    let raw = std::fs::read(source).map_err(|e| format!("cannot read {source}: {e}"))?;
    if raw.starts_with(b"CSG1") || raw.starts_with(b"CSG2") {
        binfmt::decode_graph(&raw).map_err(|e| format!("{source}: {e}"))
    } else {
        let text = String::from_utf8(raw).map_err(|_| format!("{source} is not UTF-8"))?;
        ntriples::parse_triples(&text).map_err(|e| format!("bad triples in {source}: {e}"))
    }
}

/// The `csq snapshot <save|inspect> ...` subcommand.
fn snapshot_command(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("save") => {
            let (Some(input), Some(out)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let mut opts = binfmt::EncodeOptions::default();
            for extra in &args[3..] {
                match extra.as_str() {
                    "--no-stats" => opts.include_stats = false,
                    _ => return usage(),
                }
            }
            let graph = match load_graph(input) {
                Ok(g) => g,
                Err(e) => return fail(e),
            };
            match snapshot::save_to_with(&graph, out, &opts) {
                Ok(info) => {
                    print!("wrote {out}: {info}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        Some("inspect") => {
            let Some(file) = args.get(1) else {
                return usage();
            };
            if args.len() > 2 {
                return usage();
            }
            match snapshot::inspect(file) {
                Ok(info) => {
                    print!("{file}: {info}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        _ => usage(),
    }
}

/// One un-committed mutation batch of the `csq watch` script loop.
#[derive(Default)]
struct PendingBatch {
    ops: Vec<Mutation>,
    /// Labels of nodes inserted by this batch, mapped to the ids
    /// `Graph::apply` will assign them (sequential from the committed
    /// node count), so later `edge` lines of the batch can reference
    /// them by name.
    names: std::collections::HashMap<String, NodeId>,
    /// Nodes inserted so far in this batch.
    inserted: usize,
    /// Edges already claimed by `del` lines of this batch, so two
    /// identical `del` lines remove two parallel edges, not one twice.
    deleted: std::collections::HashSet<connection_search::graph::EdgeId>,
}

/// Resolves a script node reference: a label introduced by a pending
/// `node` line, a raw `n<ID>` id, or an exact committed node label.
fn resolve_script_node(g: &Graph, batch: &PendingBatch, tok: &str) -> Result<NodeId, String> {
    if let Some(&n) = batch.names.get(tok) {
        return Ok(n);
    }
    if let Some(raw) = tok.strip_prefix('n') {
        if let Ok(idx) = raw.parse::<u32>() {
            if (idx as usize) < g.node_count() + batch.inserted {
                return Ok(NodeId(idx));
            }
            return Err(format!(
                "node id n{idx} out of range (graph has {} nodes)",
                g.node_count() + batch.inserted
            ));
        }
    }
    g.node_by_label(tok)
        .ok_or_else(|| format!("no node labelled {tok:?} (and not an n<ID> reference)"))
}

/// Finds one live committed edge `src -label-> dst` not already
/// claimed by this batch.
fn resolve_script_edge(
    g: &Graph,
    batch: &PendingBatch,
    src: NodeId,
    label: &str,
    dst: NodeId,
) -> Result<connection_search::graph::EdgeId, String> {
    let describe = || format!("{} -{label}-> {}", g.node_label(src), g.node_label(dst));
    let Some(lid) = g.label_id(label) else {
        return Err(format!("no committed edge {}", describe()));
    };
    g.outgoing(src)
        .map(|a| a.edge())
        .find(|&e| {
            let ed = g.edge(e);
            ed.label == lid && ed.dst == dst && !batch.deleted.contains(&e)
        })
        .ok_or_else(|| format!("no committed edge {}", describe()))
}

/// The `csq watch` subcommand: registers standing queries over a live
/// graph and applies a mutation script, printing per-generation result
/// deltas after every `commit`.
fn watch_command(args: &[String]) -> ExitCode {
    let mut source: Option<&str> = None;
    let mut query_arg: Option<&str> = None;
    let mut script_path: Option<&str> = None;
    let mut opts = ExecOptions::default();
    let mut show_stats = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--script" => {
                let Some(path) = args.get(i + 1) else {
                    return fail("--script expects a file path (or -), but none was given");
                };
                script_path = Some(path);
                i += 2;
            }
            "--threads" => {
                match numeric_flag::<usize>(args, i, "--threads") {
                    Ok(n) => opts.threads = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--search-threads" => {
                match numeric_flag::<usize>(args, i, "--search-threads") {
                    Ok(n) => opts.search_threads = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--result-cache" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("on") => opts.result_cache = ResultCacheMode::On,
                    Some("off") => opts.result_cache = ResultCacheMode::Off,
                    Some(other) => {
                        return fail(format!("--result-cache expects on|off, got {other:?}"))
                    }
                    None => return fail("--result-cache expects on|off, but none was given"),
                }
                i += 2;
            }
            "--stats" => {
                show_stats = true;
                i += 1;
            }
            other => {
                if other.starts_with("--") && other != "--demo" {
                    return usage();
                }
                if source.is_none() {
                    source = Some(other);
                } else if query_arg.is_none() {
                    query_arg = Some(other);
                } else {
                    return usage();
                }
                i += 1;
            }
        }
    }
    let (Some(source), Some(query_arg)) = (source, query_arg) else {
        return usage();
    };
    let query = match read_query_arg(query_arg) {
        Ok(q) => q,
        Err(e) => return fail(e),
    };

    // Watching mutates the graph, so the session must own it: load
    // via `load_graph` even for `.csg` sources (the decoded snapshot
    // is an owned graph; its statistics sidecar still rides along).
    let mut session = match load_graph(source) {
        Ok(g) => connection_search::Session::from_graph_with(g, opts),
        Err(e) => return fail(e),
    };

    let queries = split_queries(&query);
    if queries.is_empty() {
        return fail("watch input contains no queries");
    }
    let mut watches = Vec::with_capacity(queries.len());
    for (wi, text) in queries.iter().enumerate() {
        match session.watch(text) {
            Ok(w) => {
                eprintln!(
                    "watch {wi}: {} baseline row(s) at generation {}",
                    w.rows().len(),
                    w.generation()
                );
                watches.push(w);
            }
            Err(e) => {
                report_query_error(&e);
                eprintln!("  in: {}", text.trim());
                return ExitCode::FAILURE;
            }
        }
    }

    let reader: Box<dyn std::io::BufRead> = match script_path {
        None | Some("-") => Box::new(std::io::stdin().lock()),
        Some(path) => match std::fs::File::open(path) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => return fail(format!("cannot read script {path}: {e}")),
        },
    };

    let mut batch = PendingBatch::default();
    for (lineno, line) in std::io::BufRead::lines(reader).enumerate() {
        let lineno = lineno + 1;
        let line = match line {
            Ok(l) => l,
            Err(e) => return fail(format!("script read error: {e}")),
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let bad = |msg: String| format!("script line {lineno}: {msg}");
        match toks[0] {
            "node" => {
                let Some(label) = toks.get(1) else {
                    return fail(bad("node expects: node <label> [type ...]".into()));
                };
                let id = NodeId::new(session.graph().node_count() + batch.inserted);
                batch.names.insert((*label).to_string(), id);
                batch.inserted += 1;
                batch.ops.push(Mutation::InsertNode {
                    label: (*label).to_string(),
                    types: toks[2..].iter().map(|s| s.to_string()).collect(),
                });
            }
            "edge" | "del" => {
                let [_, s, l, d] = toks[..] else {
                    return fail(bad(format!(
                        "{} expects: {} <src> <label> <dst>",
                        toks[0], toks[0]
                    )));
                };
                let g = session.graph();
                let (src, dst) = match (
                    resolve_script_node(g, &batch, s),
                    resolve_script_node(g, &batch, d),
                ) {
                    (Ok(src), Ok(dst)) => (src, dst),
                    (Err(e), _) | (_, Err(e)) => return fail(bad(e)),
                };
                if toks[0] == "edge" {
                    batch.ops.push(Mutation::InsertEdge {
                        src,
                        label: l.to_string(),
                        dst,
                    });
                } else {
                    match resolve_script_edge(g, &batch, src, l, dst) {
                        Ok(e) => {
                            batch.deleted.insert(e);
                            batch.ops.push(Mutation::RemoveEdge { edge: e });
                        }
                        Err(e) => return fail(bad(e)),
                    }
                }
            }
            "commit" => {
                if toks.len() > 1 {
                    return fail(bad("commit takes no arguments".into()));
                }
                if let Err(e) = commit_and_poll(&mut session, &mut batch, &mut watches, show_stats)
                {
                    return fail(bad(e));
                }
            }
            other => {
                return fail(bad(format!(
                    "unknown op {other:?} (expected node, edge, del, or commit)"
                )))
            }
        }
    }
    // A trailing un-committed batch commits implicitly at EOF.
    if !batch.ops.is_empty() {
        if let Err(e) = commit_and_poll(&mut session, &mut batch, &mut watches, show_stats) {
            return fail(e);
        }
    }
    ExitCode::SUCCESS
}

/// Applies the pending batch through the session and polls every
/// watch, printing `watch I + row` / `watch I - row` delta lines to
/// stdout (and, with `--stats`, how unchanged polls were decided to
/// stderr).
fn commit_and_poll(
    session: &mut connection_search::Session<'_>,
    batch: &mut PendingBatch,
    watches: &mut [connection_search::eql::Watch],
    show_stats: bool,
) -> Result<(), String> {
    let ops = std::mem::take(&mut batch.ops);
    *batch = PendingBatch::default();
    if ops.is_empty() {
        eprintln!("commit: empty batch, nothing to apply");
        return Ok(());
    }
    let applied = session.mutate(ops).map_err(|e| e.to_string())?;
    println!(
        "-- generation {} (+{} node(s), +{} edge(s), -{} edge(s)){} --",
        applied.generation,
        applied.nodes.len(),
        applied.edges.len(),
        applied.removed,
        if applied.compacted { ", compacted" } else { "" }
    );
    for (wi, w) in watches.iter_mut().enumerate() {
        let delta = w.poll(session).map_err(|e| e.to_string())?;
        for row in &delta.added {
            println!("watch {wi} + {row}");
        }
        for row in &delta.removed {
            println!("watch {wi} - {row}");
        }
        if delta.is_empty() && show_stats {
            let how = match delta.skipped {
                Some(WatchSkip::Unchanged) => "generation unchanged".to_string(),
                Some(WatchSkip::LabelsDisjoint) => "mutated labels disjoint".to_string(),
                Some(WatchSkip::DeltaUnreachable) => {
                    format!("delta unreachable, probe visited {}", delta.probe_visited)
                }
                None => "re-evaluated, answer unchanged".to_string(),
            };
            eprintln!("watch {wi}: no change ({how})");
        }
    }
    Ok(())
}

/// Splits batch input on `;` separators outside double-quoted strings,
/// dropping empty segments.
fn split_queries(input: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in input.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ';' if !in_string => {
                out.push(&input[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&input[start..]);
    out.retain(|q| !q.trim().is_empty());
    out
}

/// Prints a query's step-(A) plans and plan-cache counters to stderr
/// (the `--explain` view, shared by the materialised and stream
/// paths).
fn report_plans(stats: &connection_search::eql::ExecStats) {
    for (i, plan) in stats.plans.iter().enumerate() {
        let cached = if plan.cached { ", cached" } else { "" };
        eprintln!(
            "BGP {i} plan (est {} rows scanned{cached}):",
            plan.total_estimate()
        );
        eprint!("{plan}");
    }
    eprintln!(
        "plan cache: {} hit(s), {} miss(es)",
        stats.plan_cache_hits, stats.plan_cache_misses
    );
    for n in &stats.seed_narrowings {
        eprintln!(
            "magic seeds: CTP {} seed {} narrowed {} -> {} node(s)",
            n.ctp, n.var, n.from, n.to
        );
    }
}

/// Prints one query's result (and optional plan/stats views) to
/// stdout/stderr.
fn report(graph: &Graph, result: &QueryResult, show_plan: bool, show_stats: bool) {
    if show_plan {
        report_plans(&result.stats);
    }
    print!("{}", result.render(graph));
    eprintln!("{} row(s)", result.rows());
    if show_stats {
        eprintln!(
            "total {:?} | bgp {:?} | ctp {:?} | join {:?}",
            result.stats.total_time,
            result.stats.bgp_time,
            result.stats.ctp_time,
            result.stats.join_time
        );
        eprintln!(
            "result cache: {} hit(s), {} miss(es), {} subsumed, {} tree(s) filtered",
            result.stats.result_cache_hits,
            result.stats.result_cache_misses,
            result.stats.result_cache_subsumed,
            result.stats.result_cache_trees_filtered
        );
        for (var, s, d) in &result.stats.ctp_stats {
            eprintln!(
                "CTP {var}: {} provenances, {} grows, {} merges, {} pruned, {} stolen, {:?}{}",
                s.provenances,
                s.grows,
                s.merges,
                s.pruned,
                s.stolen,
                d,
                if s.timed_out { " (TIMED OUT)" } else { "" }
            );
            for (wi, ws) in s.workers.iter().enumerate() {
                eprintln!(
                    "  worker {wi}: {} produced, {} pruned, {} stolen",
                    ws.produced, ws.pruned, ws.stolen
                );
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("snapshot") => return snapshot_command(&args[1..]),
        Some("connect") => return connect_command(&args[1..]),
        Some("bench-serve") => return bench_serve_command(&args[1..]),
        Some("watch") => return watch_command(&args[1..]),
        _ => {}
    }
    if args.len() < 2 {
        return usage();
    }

    // Separate the graph source, the query, and the flags. The source
    // is the first positional argument or the value of `--graph`.
    let mut source: Option<&str> = None;
    let mut query_arg: Option<&str> = None;
    let mut opts = ExecOptions::default();
    let mut show_stats = false;
    let mut show_plan = false;
    let mut batch = false;
    let mut stream = false;
    let mut legacy_snapshot_out: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--graph" => {
                let Some(path) = args.get(i + 1) else {
                    return fail("--graph expects a file path, but none was given");
                };
                if source.is_some() {
                    return fail("graph source given twice (positional and --graph)");
                }
                source = Some(path);
                i += 2;
            }
            "--snapshot" => {
                // Legacy conversion mode: `csq <graph> --snapshot <out>`.
                let Some(out) = args.get(i + 1) else {
                    return usage();
                };
                legacy_snapshot_out = Some(out);
                i += 2;
            }
            "--algorithm" => {
                let Some(name) = args.get(i + 1) else {
                    return usage();
                };
                match name.parse::<Algorithm>() {
                    Ok(a) => opts.default_algorithm = a,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--timeout" => {
                match numeric_flag::<u64>(&args, i, "--timeout") {
                    Ok(ms) => opts.default_timeout = Some(Duration::from_millis(ms)),
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--timeout-ms" => {
                match numeric_flag::<u64>(&args, i, "--timeout-ms") {
                    Ok(ms) => opts.deadline = Some(Duration::from_millis(ms)),
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--threads" => {
                match numeric_flag::<usize>(&args, i, "--threads") {
                    Ok(n) => opts.threads = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--search-threads" => {
                match numeric_flag::<usize>(&args, i, "--search-threads") {
                    Ok(n) => opts.search_threads = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--result-cache" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("on") => opts.result_cache = ResultCacheMode::On,
                    Some("off") => opts.result_cache = ResultCacheMode::Off,
                    Some(other) => {
                        return fail(format!("--result-cache expects on|off, got {other:?}"))
                    }
                    None => return fail("--result-cache expects on|off, but none was given"),
                }
                i += 2;
            }
            "--result-cache-capacity" => {
                match numeric_flag::<usize>(&args, i, "--result-cache-capacity") {
                    Ok(n) => opts.result_cache_capacity = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--stats" => {
                show_stats = true;
                i += 1;
            }
            "--explain" => {
                show_plan = true;
                i += 1;
            }
            "--batch" => {
                batch = true;
                i += 1;
            }
            "--stream" => {
                stream = true;
                i += 1;
            }
            other => {
                if other.starts_with("--") && other != "--demo" {
                    return usage();
                }
                if source.is_none() && query_arg.is_none() && legacy_snapshot_out.is_none() {
                    source = Some(other);
                } else if query_arg.is_none() {
                    query_arg = Some(other);
                } else {
                    return usage();
                }
                i += 1;
            }
        }
    }

    if batch && stream {
        return fail("--stream streams a single query and cannot be combined with --batch");
    }

    let Some(source) = source else {
        return usage();
    };

    // Legacy `--snapshot` conversion mode.
    if let Some(out) = legacy_snapshot_out {
        let graph = match load_graph(source) {
            Ok(g) => g,
            Err(e) => return fail(e),
        };
        return match snapshot::save_to(&graph, out) {
            Ok(info) => {
                print!("wrote {out}: {info}");
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        };
    }

    let Some(query_arg) = query_arg else {
        return usage();
    };
    let query = if let Some(path) = query_arg.strip_prefix('@') {
        match std::fs::read_to_string(path) {
            Ok(q) => q,
            Err(e) => return fail(format!("cannot read query file {path}: {e}")),
        }
    } else {
        query_arg.to_string()
    };

    // One session for the whole invocation: every query (and every
    // batch member) shares the plan cache. `.csg` sources go through
    // `Session::open_snapshot`, so a statistics sidecar lands directly
    // in the planner.
    let session = if source != "--demo" && source.ends_with(".csg") {
        match Session::open_snapshot_with(source, opts) {
            Ok(s) => s,
            Err(e) => return fail(e),
        }
    } else {
        match load_graph(source) {
            Ok(g) => Session::from_graph_with(g, opts),
            Err(e) => return fail(e),
        }
    };
    let graph = session.graph();

    if batch {
        let queries = split_queries(&query);
        if queries.is_empty() {
            return fail("--batch input contains no queries");
        }
        let results = session.execute_batch(&queries);
        let mut failed = false;
        for (qi, (text, result)) in queries.iter().zip(&results).enumerate() {
            eprintln!("-- query {} of {} --", qi + 1, results.len());
            match result {
                Ok(r) => report(graph, r, show_plan, show_stats),
                Err(e) => {
                    report_query_error(e);
                    eprintln!("  in: {}", text.trim());
                    failed = true;
                }
            }
        }
        if show_stats || show_plan {
            eprintln!(
                "session plan cache: {} hit(s), {} miss(es), {} cached plan(s)",
                session.plan_cache_hits(),
                session.plan_cache_misses(),
                session.plan_cache_len()
            );
            let rc = session.result_cache_counters();
            eprintln!(
                "session result cache: {} hit(s), {} miss(es), {} subsumed, \
                 {} tree(s) filtered, {} cached result(s)",
                rc.hits,
                rc.misses,
                rc.subsumed,
                rc.trees_filtered,
                session.result_cache_len()
            );
        }
        if failed {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if stream {
        let prepared = match session.prepare(&query) {
            Ok(p) => p,
            Err(e) => {
                report_query_error(&e);
                return ExitCode::FAILURE;
            }
        };
        let mut result_stream = match session.execute_streaming(&prepared) {
            Ok(s) => s,
            Err(e) => {
                report_query_error(&e);
                return ExitCode::FAILURE;
            }
        };
        if show_plan {
            report_plans(result_stream.exec_stats());
        }
        println!("{}", result_stream.out_var());
        let mut n = 0usize;
        for tree in result_stream.by_ref() {
            println!("[{}]", tree.describe(graph));
            n += 1;
        }
        eprintln!("{n} tree(s) streamed");
        if show_stats {
            let s = result_stream.stats();
            eprintln!(
                "stream {:?} | {} provenances, {} grows, {} merges, {} pruned",
                result_stream.elapsed(),
                s.provenances,
                s.grows,
                s.merges,
                s.pruned
            );
        }
        return ExitCode::SUCCESS;
    }

    match session.run(&query) {
        Ok(result) => {
            report(graph, &result, show_plan, show_stats);
            ExitCode::SUCCESS
        }
        Err(e) => {
            report_query_error(&e);
            ExitCode::FAILURE
        }
    }
}

/// Prints a server-side failure the way local mode would: typed
/// control rejections (cancelled, deadline, admission) are one-line
/// `error:` messages; query errors keep the `query error:` prefix.
fn report_client_error(e: &ClientError) -> ExitCode {
    match e {
        ClientError::Server(reply) => match reply.code {
            ErrorCode::Query => {
                eprintln!("query error: {}", reply.message);
            }
            _ => {
                eprintln!("error: {}", reply.message);
            }
        },
        other => {
            eprintln!("error: {other}");
        }
    }
    ExitCode::FAILURE
}

/// The `csq connect <addr> <query|@file> ...` subcommand: runs queries
/// against a `csqd` server, printing results identically to local
/// mode.
fn connect_command(args: &[String]) -> ExitCode {
    let mut addr: Option<&str> = None;
    let mut query_arg: Option<&str> = None;
    let mut header = RequestHeader::default();
    let mut batch = false;
    let mut show_stats = false;
    let mut cancel_after_ms: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => {
                show_stats = true;
                i += 1;
            }
            "--tenant" => {
                let Some(t) = args.get(i + 1) else {
                    return fail("--tenant expects a name, but none was given");
                };
                header.tenant = t.clone();
                i += 2;
            }
            "--timeout-ms" => {
                match numeric_flag::<u32>(args, i, "--timeout-ms") {
                    Ok(ms) => header.deadline_ms = ms,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--cancel-after-ms" => {
                match numeric_flag::<u64>(args, i, "--cancel-after-ms") {
                    Ok(ms) => cancel_after_ms = Some(ms),
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--batch" => {
                batch = true;
                i += 1;
            }
            other => {
                if other.starts_with("--") {
                    return usage();
                }
                if addr.is_none() {
                    addr = Some(other);
                } else if query_arg.is_none() {
                    query_arg = Some(other);
                } else {
                    return usage();
                }
                i += 1;
            }
        }
    }
    let (Some(addr), Some(query_arg)) = (addr, query_arg) else {
        return usage();
    };
    let query = match read_query_arg(query_arg) {
        Ok(q) => q,
        Err(e) => return fail(e),
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return fail(format!("cannot connect to {addr}: {e}")),
    };

    let reply = if batch {
        let queries = split_queries(&query);
        if queries.is_empty() {
            return fail("--batch input contains no queries");
        }
        client.batch(&queries, &header)
    } else if let Some(ms) = cancel_after_ms {
        // Two-phase: send, arm the canceller against the id, wait.
        match client.send_query(&query, &header) {
            Ok(id) => {
                let mut canceller = match client.canceller() {
                    Ok(c) => c,
                    Err(e) => return fail(e),
                };
                let handle = std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(ms));
                    let _ = canceller.cancel(id);
                });
                let r = client.wait_query(id);
                let _ = handle.join();
                r
            }
            Err(e) => Err(e),
        }
    } else {
        client.query(&query, &header)
    };

    match reply {
        Ok(r) => {
            print!("{}", r.text);
            eprintln!("{} row(s)", r.rows);
            if show_stats {
                // The server-side view: scheduler occupancy, served
                // counters, and the shared result-cache counters.
                match client.stats() {
                    Ok(text) => eprint!("{text}"),
                    Err(e) => return report_client_error(&e),
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => report_client_error(&e),
    }
}

/// The `csq bench-serve` subcommand: an open-loop load generator. One
/// request is *scheduled* every `1/qps` seconds across K connections
/// regardless of completions (an overloaded server shows up as rising
/// latency, not a lower request rate), and per-request latency goes
/// into an exact histogram.
fn bench_serve_command(args: &[String]) -> ExitCode {
    let mut addr: Option<&str> = None;
    let mut query_arg: Option<&str> = None;
    let mut header = RequestHeader::default();
    let mut qps: u64 = 50;
    let mut duration_ms: u64 = 2_000;
    let mut connections: usize = 4;
    let mut label = "bench_serve".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tenant" => {
                let Some(t) = args.get(i + 1) else {
                    return fail("--tenant expects a name, but none was given");
                };
                header.tenant = t.clone();
                i += 2;
            }
            "--timeout-ms" => {
                match numeric_flag::<u32>(args, i, "--timeout-ms") {
                    Ok(ms) => header.deadline_ms = ms,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--qps" => {
                match numeric_flag::<u64>(args, i, "--qps") {
                    Ok(n) if n > 0 => qps = n,
                    Ok(_) => return fail("--qps must be positive"),
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--duration-ms" => {
                match numeric_flag::<u64>(args, i, "--duration-ms") {
                    Ok(n) if n > 0 => duration_ms = n,
                    Ok(_) => return fail("--duration-ms must be positive"),
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--connections" => {
                match numeric_flag::<usize>(args, i, "--connections") {
                    Ok(n) if n > 0 => connections = n,
                    Ok(_) => return fail("--connections must be positive"),
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--label" => {
                // Record-name prefix for the CS_BENCH_JSON sink, so
                // two runs (e.g. cache off vs shared) land as distinct
                // series in one report.
                let Some(name) = args.get(i + 1) else {
                    return fail("--label expects a name, but none was given");
                };
                label = name.clone();
                i += 2;
            }
            other => {
                if other.starts_with("--") {
                    return usage();
                }
                if addr.is_none() {
                    addr = Some(other);
                } else if query_arg.is_none() {
                    query_arg = Some(other);
                } else {
                    return usage();
                }
                i += 1;
            }
        }
    }
    let (Some(addr), Some(query_arg)) = (addr, query_arg) else {
        return usage();
    };
    let query = match read_query_arg(query_arg) {
        Ok(q) => q,
        Err(e) => return fail(e),
    };

    let total = (qps * duration_ms / 1_000).max(1) as usize;
    let interval = Duration::from_secs_f64(1.0 / qps as f64);
    let mut clients = Vec::with_capacity(connections);
    for _ in 0..connections {
        match Client::connect(addr) {
            Ok(c) => clients.push(c),
            Err(e) => return fail(format!("cannot connect to {addr}: {e}")),
        }
    }

    // Request k fires at t0 + k·interval on connection k mod K. Each
    // connection thread owns the requests assigned to it; a slow reply
    // delays only that connection's later sends (open-loop per lane).
    struct LaneResult {
        hist: LatencyHistogram,
        ok: usize,
        deadline_exceeded: usize,
        rejected: usize,
        failed: usize,
    }
    let t0 = Instant::now();
    let lanes: Vec<LaneResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(lane, mut client)| {
                let header = header.clone();
                let query = query.as_str();
                scope.spawn(move || {
                    let mut r = LaneResult {
                        hist: LatencyHistogram::new(),
                        ok: 0,
                        deadline_exceeded: 0,
                        rejected: 0,
                        failed: 0,
                    };
                    let mut k = lane;
                    while k < total {
                        let target = t0 + interval * k as u32;
                        let now = Instant::now();
                        if now < target {
                            std::thread::sleep(target - now);
                        }
                        let sent = Instant::now();
                        match client.query(query, &header) {
                            Ok(_) => {
                                r.ok += 1;
                                r.hist.record(sent.elapsed().as_nanos() as u64);
                            }
                            Err(ClientError::Server(e)) => match e.code {
                                ErrorCode::DeadlineExceeded | ErrorCode::Cancelled => {
                                    r.deadline_exceeded += 1;
                                }
                                ErrorCode::Overloaded | ErrorCode::ShuttingDown => {
                                    r.rejected += 1;
                                }
                                _ => r.failed += 1,
                            },
                            Err(_) => {
                                // Transport failure: this lane is dead.
                                r.failed += total.saturating_sub(k) / connections.max(1) + 1;
                                break;
                            }
                        }
                        k += connections;
                    }
                    r
                })
            })
            .collect();
        handles.into_iter().filter_map(|h| h.join().ok()).collect()
    });
    let elapsed = t0.elapsed();

    let mut hist = LatencyHistogram::new();
    let (mut ok, mut deadline_exceeded, mut rejected, mut failed) =
        (0usize, 0usize, 0usize, 0usize);
    for lane in lanes {
        ok += lane.ok;
        deadline_exceeded += lane.deadline_exceeded;
        rejected += lane.rejected;
        failed += lane.failed;
        hist.merge(&lane.hist);
    }

    if ok == 0 {
        return fail("bench-serve: no request succeeded");
    }
    let achieved_qps = ok as f64 / elapsed.as_secs_f64();
    let (p50, p95, p99) = (
        hist.percentile(50.0),
        hist.percentile(95.0),
        hist.percentile(99.0),
    );
    println!(
        "bench-serve: {total} scheduled @ {qps} qps over {connections} connection(s)\n\
         completed {ok} ok ({achieved_qps:.1} qps), {deadline_exceeded} deadline/cancel, \
         {rejected} rejected, {failed} failed in {elapsed:.2?}\n\
         latency p50 {} p95 {} p99 {} mean {}",
        fmt_ns(p50),
        fmt_ns(p95),
        fmt_ns(p99),
        fmt_ns(hist.mean()),
    );

    // cs-bench/1 records into the shared sink, aggregated by
    // `bench_report` alongside the criterion benches.
    if let Ok(path) = std::env::var("CS_BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write as _;
            let records = [
                (format!("{label}/p50"), p50),
                (format!("{label}/p95"), p95),
                (format!("{label}/p99"), p99),
            ];
            let mut lines = String::new();
            for (name, ns) in records {
                let rec = BenchRecord {
                    name,
                    mean_ns: ns,
                    iters: hist.len() as u64,
                };
                lines.push_str(&rec.to_json_line());
                lines.push('\n');
            }
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(lines.as_bytes()));
            if let Err(e) = written {
                eprintln!("warning: cannot append to CS_BENCH_JSON sink {path}: {e}");
            }
        }
    }
    ExitCode::SUCCESS
}

/// Formats a nanosecond latency human-readably.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}
