//! `csq` — the connection-search query CLI.
//!
//! ```text
//! csq <graph-file> <query-or-@file> [--algorithm NAME] [--timeout MS]
//!     [--threads N] [--stats] [--explain]
//! csq --demo <query-or-@file>            # run against the Figure 1 graph
//! csq <graph.triples> --snapshot out.csg # convert triples to binary snapshot
//! ```
//!
//! `--threads N` evaluates independent CTPs in parallel (0 = available
//! parallelism); `--explain` prints the access-path plan of each BGP
//! before the results.
//!
//! Graph files ending in `.csg` load as binary snapshots
//! (`cs_graph::binfmt`); anything else parses as tab-separated triples
//! (`cs_graph::ntriples`).

use connection_search::core::Algorithm;
use connection_search::eql::{run_query_with, ExecOptions};
use connection_search::graph::{binfmt, figure1, ntriples, Graph};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: csq <graph-file|--demo> <query|@query-file> \
         [--algorithm NAME] [--timeout MS] [--threads N] [--stats] [--explain]\n       \
         csq <graph-file> --snapshot <out.csg>"
    );
    ExitCode::from(2)
}

fn load_graph(path: &str) -> Result<Graph, String> {
    if path == "--demo" {
        return Ok(figure1());
    }
    let raw = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".csg") {
        binfmt::decode_graph(&raw).map_err(|e| format!("bad snapshot {path}: {e}"))
    } else {
        let text = String::from_utf8(raw).map_err(|_| format!("{path} is not UTF-8"))?;
        ntriples::parse_triples(&text).map_err(|e| format!("bad triples in {path}: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }

    let graph = match load_graph(&args[0]) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Snapshot conversion mode.
    if args[1] == "--snapshot" {
        let Some(out) = args.get(2) else {
            return usage();
        };
        let bytes = binfmt::encode_graph(&graph);
        if let Err(e) = std::fs::write(out, &bytes) {
            eprintln!("error writing {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {out}: {} nodes, {} edges, {} bytes",
            graph.node_count(),
            graph.edge_count(),
            bytes.len()
        );
        return ExitCode::SUCCESS;
    }

    let query_arg = &args[1];
    let query = if let Some(path) = query_arg.strip_prefix('@') {
        match std::fs::read_to_string(path) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("error: cannot read query file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        query_arg.clone()
    };

    let mut opts = ExecOptions::default();
    let mut show_stats = false;
    let mut show_plan = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--algorithm" => {
                let Some(name) = args.get(i + 1) else {
                    return usage();
                };
                match name.parse::<Algorithm>() {
                    Ok(a) => opts.default_algorithm = a,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--timeout" => {
                let Some(ms) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                opts.default_timeout = Some(Duration::from_millis(ms));
                i += 2;
            }
            "--threads" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                opts.threads = n;
                i += 2;
            }
            "--stats" => {
                show_stats = true;
                i += 1;
            }
            "--explain" => {
                show_plan = true;
                i += 1;
            }
            _ => return usage(),
        }
    }

    match run_query_with(&graph, &query, &opts) {
        Ok(result) => {
            if show_plan {
                for (i, plan) in result.stats.plans.iter().enumerate() {
                    eprintln!("BGP {i} plan (est {} rows scanned):", plan.total_estimate());
                    eprint!("{plan}");
                }
            }
            print!("{}", result.render(&graph));
            eprintln!("{} row(s)", result.rows());
            if show_stats {
                eprintln!(
                    "bgp {:?} | ctp {:?} | join {:?}",
                    result.stats.bgp_time, result.stats.ctp_time, result.stats.join_time
                );
                for (var, s, d) in &result.stats.ctp_stats {
                    eprintln!(
                        "CTP {var}: {} provenances, {} grows, {} merges, {} pruned, {:?}{}",
                        s.provenances,
                        s.grows,
                        s.merges,
                        s.pruned,
                        d,
                        if s.timed_out { " (TIMED OUT)" } else { "" }
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query error: {e}");
            ExitCode::FAILURE
        }
    }
}
