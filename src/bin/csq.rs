//! `csq` — the connection-search query CLI.
//!
//! ```text
//! csq <graph-file> <query-or-@file> [--algorithm NAME] [--timeout MS]
//!     [--threads N] [--search-threads N] [--stats] [--explain] [--batch]
//! csq --demo <query-or-@file>            # run against the Figure 1 graph
//! csq <graph.triples> --snapshot out.csg # convert triples to binary snapshot
//! ```
//!
//! `--threads N` sets the worker budget for evaluating independent
//! CTPs in parallel (0 = available parallelism); `--search-threads N`
//! additionally splits each *single* connection search over N
//! intra-search workers on the partitioned-history engine (0 = divide
//! the `--threads` budget over the concurrent CTPs); `--explain`
//! prints the access-path plan of each BGP (with plan-cache hits)
//! before the results; `--batch` treats the query input as several
//! `;`-separated queries, executed through one [`Session`] so
//! structurally identical BGPs share cached plans and all CTP jobs go
//! through a single parallel dispatch.
//!
//! The exit code is non-zero when the graph cannot be loaded, a query
//! fails to parse, or execution errors — including any query of a
//! batch.
//!
//! Graph files ending in `.csg` load as binary snapshots
//! (`cs_graph::binfmt`); anything else parses as tab-separated triples
//! (`cs_graph::ntriples`).

use connection_search::core::Algorithm;
use connection_search::eql::{ExecOptions, QueryResult};
use connection_search::graph::{binfmt, figure1, ntriples, Graph};
use connection_search::Session;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: csq <graph-file|--demo> <query|@query-file> \
         [--algorithm NAME] [--timeout MS] [--threads N] [--search-threads N] \
         [--stats] [--explain] [--batch]\n       \
         csq <graph-file> --snapshot <out.csg>"
    );
    ExitCode::from(2)
}

/// Parses the numeric value of `flag` at `args[i + 1]`. Missing or
/// non-numeric values are a clear one-line error, not a usage dump (or
/// worse, a panic).
fn numeric_flag<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String> {
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("{flag} expects a number, but none was given"));
    };
    raw.parse::<T>()
        .map_err(|_| format!("{flag} expects a number, got {raw:?}"))
}

fn load_graph(path: &str) -> Result<Graph, String> {
    if path == "--demo" {
        return Ok(figure1());
    }
    let raw = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".csg") {
        binfmt::decode_graph(&raw).map_err(|e| format!("bad snapshot {path}: {e}"))
    } else {
        let text = String::from_utf8(raw).map_err(|_| format!("{path} is not UTF-8"))?;
        ntriples::parse_triples(&text).map_err(|e| format!("bad triples in {path}: {e}"))
    }
}

/// Splits batch input on `;` separators outside double-quoted strings,
/// dropping empty segments.
fn split_queries(input: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in input.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ';' if !in_string => {
                out.push(&input[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&input[start..]);
    out.retain(|q| !q.trim().is_empty());
    out
}

/// Prints one query's result (and optional plan/stats views) to
/// stdout/stderr.
fn report(graph: &Graph, result: &QueryResult, show_plan: bool, show_stats: bool) {
    if show_plan {
        for (i, plan) in result.stats.plans.iter().enumerate() {
            let cached = if plan.cached { ", cached" } else { "" };
            eprintln!(
                "BGP {i} plan (est {} rows scanned{cached}):",
                plan.total_estimate()
            );
            eprint!("{plan}");
        }
        eprintln!(
            "plan cache: {} hit(s), {} miss(es)",
            result.stats.plan_cache_hits, result.stats.plan_cache_misses
        );
    }
    print!("{}", result.render(graph));
    eprintln!("{} row(s)", result.rows());
    if show_stats {
        eprintln!(
            "total {:?} | bgp {:?} | ctp {:?} | join {:?}",
            result.stats.total_time,
            result.stats.bgp_time,
            result.stats.ctp_time,
            result.stats.join_time
        );
        for (var, s, d) in &result.stats.ctp_stats {
            eprintln!(
                "CTP {var}: {} provenances, {} grows, {} merges, {} pruned, {} stolen, {:?}{}",
                s.provenances,
                s.grows,
                s.merges,
                s.pruned,
                s.stolen,
                d,
                if s.timed_out { " (TIMED OUT)" } else { "" }
            );
            for (wi, ws) in s.workers.iter().enumerate() {
                eprintln!(
                    "  worker {wi}: {} produced, {} pruned, {} stolen",
                    ws.produced, ws.pruned, ws.stolen
                );
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }

    let graph = match load_graph(&args[0]) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Snapshot conversion mode.
    if args[1] == "--snapshot" {
        let Some(out) = args.get(2) else {
            return usage();
        };
        let bytes = binfmt::encode_graph(&graph);
        if let Err(e) = std::fs::write(out, &bytes) {
            eprintln!("error writing {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {out}: {} nodes, {} edges, {} bytes",
            graph.node_count(),
            graph.edge_count(),
            bytes.len()
        );
        return ExitCode::SUCCESS;
    }

    let query_arg = &args[1];
    let query = if let Some(path) = query_arg.strip_prefix('@') {
        match std::fs::read_to_string(path) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("error: cannot read query file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        query_arg.clone()
    };

    let mut opts = ExecOptions::default();
    let mut show_stats = false;
    let mut show_plan = false;
    let mut batch = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--algorithm" => {
                let Some(name) = args.get(i + 1) else {
                    return usage();
                };
                match name.parse::<Algorithm>() {
                    Ok(a) => opts.default_algorithm = a,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--timeout" => {
                match numeric_flag::<u64>(&args, i, "--timeout") {
                    Ok(ms) => opts.default_timeout = Some(Duration::from_millis(ms)),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--threads" => {
                match numeric_flag::<usize>(&args, i, "--threads") {
                    Ok(n) => opts.threads = n,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--search-threads" => {
                match numeric_flag::<usize>(&args, i, "--search-threads") {
                    Ok(n) => opts.search_threads = n,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--stats" => {
                show_stats = true;
                i += 1;
            }
            "--explain" => {
                show_plan = true;
                i += 1;
            }
            "--batch" => {
                batch = true;
                i += 1;
            }
            _ => return usage(),
        }
    }

    // One session for the whole invocation: every query (and every
    // batch member) shares the plan cache.
    let session = Session::with_options(&graph, opts);

    if batch {
        let queries = split_queries(&query);
        if queries.is_empty() {
            eprintln!("error: --batch input contains no queries");
            return ExitCode::FAILURE;
        }
        let results = session.execute_batch(&queries);
        let mut failed = false;
        for (qi, (text, result)) in queries.iter().zip(&results).enumerate() {
            eprintln!("-- query {} of {} --", qi + 1, results.len());
            match result {
                Ok(r) => report(&graph, r, show_plan, show_stats),
                Err(e) => {
                    eprintln!("query error: {e}\n  in: {}", text.trim());
                    failed = true;
                }
            }
        }
        if show_stats || show_plan {
            eprintln!(
                "session plan cache: {} hit(s), {} miss(es), {} cached plan(s)",
                session.plan_cache_hits(),
                session.plan_cache_misses(),
                session.plan_cache_len()
            );
        }
        if failed {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    match session.run(&query) {
        Ok(result) => {
            report(&graph, &result, show_plan, show_stats);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query error: {e}");
            ExitCode::FAILURE
        }
    }
}
