//! `csq` — the connection-search query CLI.
//!
//! ```text
//! csq <graph-source> <query-or-@file> [--algorithm NAME] [--timeout MS]
//!     [--threads N] [--search-threads N] [--stats] [--explain] [--batch]
//!     [--stream]
//! csq --graph <file.csg> <query-or-@file> [...]   # same, source as a flag
//! csq snapshot save <gen-spec|graph-file> <out.csg> [--no-stats]
//! csq snapshot inspect <file.csg>
//! ```
//!
//! A *graph source* is `--demo` (the Figure 1 graph), a `.csg` binary
//! snapshot (`cs_graph::snapshot`), a generator spec
//! (`gen:scale_free:nodes=2000,seed=7`, see
//! `cs_graph::generate::from_spec`), or a tab-separated triples file
//! (`cs_graph::ntriples`). Snapshots loaded through `--graph`/a `.csg`
//! source carry their statistics section, so the BGP planner starts
//! warm — no first-query stats pass.
//!
//! The dataset workflow: `csq snapshot save` materialises a generator
//! spec or parsed graph file as a CSG2 snapshot (statistics sidecar
//! included unless `--no-stats`); `csq snapshot inspect` prints its
//! sections, counts, and whether statistics are present; `--graph
//! file.csg` then serves queries from the pinned dataset.
//!
//! `--threads N` sets the worker budget for evaluating independent
//! CTPs in parallel (0 = available parallelism); `--search-threads N`
//! additionally splits each *single* connection search over N
//! intra-search workers on the partitioned-history engine (0 = divide
//! the `--threads` budget over the concurrent CTPs); `--explain`
//! prints the access-path plan of each BGP (with plan-cache hits)
//! before the results; `--batch` treats the query input as several
//! `;`-separated queries, executed through one [`Session`] so
//! structurally identical BGPs share cached plans and all CTP jobs go
//! through a single parallel dispatch; `--stream` pulls a single-CTP
//! SELECT through [`Session::execute_streaming`], printing each
//! connecting tree as the search produces it.
//!
//! The exit code is non-zero when the graph cannot be loaded, a
//! snapshot cannot be saved or read, a query fails to parse, or
//! execution errors — including any query of a batch. I/O and decode
//! failures are one-line `error:` messages, never panics.

use connection_search::core::Algorithm;
use connection_search::eql::{ExecOptions, QueryResult};
use connection_search::graph::generate::from_spec;
use connection_search::graph::{binfmt, figure1, ntriples, snapshot, Graph};
use connection_search::Session;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: csq <graph-source|--demo> <query|@query-file> \
         [--algorithm NAME] [--timeout MS] [--threads N] [--search-threads N] \
         [--stats] [--explain] [--batch] [--stream]\n       \
         csq --graph <file.csg> <query|@query-file> [...]\n       \
         csq snapshot save <gen-spec|graph-file> <out.csg> [--no-stats]\n       \
         csq snapshot inspect <file.csg>\n       \
         csq <graph-file> --snapshot <out.csg>   (legacy alias of `snapshot save`)\n\
         graph sources: --demo | file.csg | gen:<family:key=value,...> | triples file"
    );
    ExitCode::from(2)
}

/// Prints a one-line error and returns the failure exit code.
fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Parses the numeric value of `flag` at `args[i + 1]`. Missing or
/// non-numeric values are a clear one-line error, not a usage dump (or
/// worse, a panic).
fn numeric_flag<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String> {
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("{flag} expects a number, but none was given"));
    };
    raw.parse::<T>()
        .map_err(|_| format!("{flag} expects a number, got {raw:?}"))
}

/// Builds a graph from a source string: `--demo`, a generator spec
/// (`gen:` prefixed, or a bare spec that names no existing file), a
/// `.csg` snapshot, or a triples file.
fn load_graph(source: &str) -> Result<Graph, String> {
    if source == "--demo" {
        return Ok(figure1());
    }
    if let Some(spec) = source.strip_prefix("gen:") {
        return from_spec(spec).map_err(|e| e.to_string());
    }
    if !std::path::Path::new(source).exists() {
        // Convenience: a known generator family without the gen:
        // prefix. Anything the spec parser does not recognise as a
        // family falls through to the (clearer) file-read error; a
        // known family with bad arguments reports the spec error.
        match from_spec(source) {
            Ok(g) => return Ok(g),
            Err(connection_search::graph::generate::SpecError::UnknownFamily(_)) => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    if source.ends_with(".csg") {
        return snapshot::load_from(source).map_err(|e| e.to_string());
    }
    let raw = std::fs::read(source).map_err(|e| format!("cannot read {source}: {e}"))?;
    if raw.starts_with(b"CSG1") || raw.starts_with(b"CSG2") {
        binfmt::decode_graph(&raw).map_err(|e| format!("{source}: {e}"))
    } else {
        let text = String::from_utf8(raw).map_err(|_| format!("{source} is not UTF-8"))?;
        ntriples::parse_triples(&text).map_err(|e| format!("bad triples in {source}: {e}"))
    }
}

/// The `csq snapshot <save|inspect> ...` subcommand.
fn snapshot_command(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("save") => {
            let (Some(input), Some(out)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let mut opts = binfmt::EncodeOptions::default();
            for extra in &args[3..] {
                match extra.as_str() {
                    "--no-stats" => opts.include_stats = false,
                    _ => return usage(),
                }
            }
            let graph = match load_graph(input) {
                Ok(g) => g,
                Err(e) => return fail(e),
            };
            match snapshot::save_to_with(&graph, out, &opts) {
                Ok(info) => {
                    print!("wrote {out}: {info}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        Some("inspect") => {
            let Some(file) = args.get(1) else {
                return usage();
            };
            if args.len() > 2 {
                return usage();
            }
            match snapshot::inspect(file) {
                Ok(info) => {
                    print!("{file}: {info}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        _ => usage(),
    }
}

/// Splits batch input on `;` separators outside double-quoted strings,
/// dropping empty segments.
fn split_queries(input: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in input.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ';' if !in_string => {
                out.push(&input[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&input[start..]);
    out.retain(|q| !q.trim().is_empty());
    out
}

/// Prints a query's step-(A) plans and plan-cache counters to stderr
/// (the `--explain` view, shared by the materialised and stream
/// paths).
fn report_plans(stats: &connection_search::eql::ExecStats) {
    for (i, plan) in stats.plans.iter().enumerate() {
        let cached = if plan.cached { ", cached" } else { "" };
        eprintln!(
            "BGP {i} plan (est {} rows scanned{cached}):",
            plan.total_estimate()
        );
        eprint!("{plan}");
    }
    eprintln!(
        "plan cache: {} hit(s), {} miss(es)",
        stats.plan_cache_hits, stats.plan_cache_misses
    );
}

/// Prints one query's result (and optional plan/stats views) to
/// stdout/stderr.
fn report(graph: &Graph, result: &QueryResult, show_plan: bool, show_stats: bool) {
    if show_plan {
        report_plans(&result.stats);
    }
    print!("{}", result.render(graph));
    eprintln!("{} row(s)", result.rows());
    if show_stats {
        eprintln!(
            "total {:?} | bgp {:?} | ctp {:?} | join {:?}",
            result.stats.total_time,
            result.stats.bgp_time,
            result.stats.ctp_time,
            result.stats.join_time
        );
        for (var, s, d) in &result.stats.ctp_stats {
            eprintln!(
                "CTP {var}: {} provenances, {} grows, {} merges, {} pruned, {} stolen, {:?}{}",
                s.provenances,
                s.grows,
                s.merges,
                s.pruned,
                s.stolen,
                d,
                if s.timed_out { " (TIMED OUT)" } else { "" }
            );
            for (wi, ws) in s.workers.iter().enumerate() {
                eprintln!(
                    "  worker {wi}: {} produced, {} pruned, {} stolen",
                    ws.produced, ws.pruned, ws.stolen
                );
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("snapshot") {
        return snapshot_command(&args[1..]);
    }
    if args.len() < 2 {
        return usage();
    }

    // Separate the graph source, the query, and the flags. The source
    // is the first positional argument or the value of `--graph`.
    let mut source: Option<&str> = None;
    let mut query_arg: Option<&str> = None;
    let mut opts = ExecOptions::default();
    let mut show_stats = false;
    let mut show_plan = false;
    let mut batch = false;
    let mut stream = false;
    let mut legacy_snapshot_out: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--graph" => {
                let Some(path) = args.get(i + 1) else {
                    return fail("--graph expects a file path, but none was given");
                };
                if source.is_some() {
                    return fail("graph source given twice (positional and --graph)");
                }
                source = Some(path);
                i += 2;
            }
            "--snapshot" => {
                // Legacy conversion mode: `csq <graph> --snapshot <out>`.
                let Some(out) = args.get(i + 1) else {
                    return usage();
                };
                legacy_snapshot_out = Some(out);
                i += 2;
            }
            "--algorithm" => {
                let Some(name) = args.get(i + 1) else {
                    return usage();
                };
                match name.parse::<Algorithm>() {
                    Ok(a) => opts.default_algorithm = a,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--timeout" => {
                match numeric_flag::<u64>(&args, i, "--timeout") {
                    Ok(ms) => opts.default_timeout = Some(Duration::from_millis(ms)),
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--threads" => {
                match numeric_flag::<usize>(&args, i, "--threads") {
                    Ok(n) => opts.threads = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--search-threads" => {
                match numeric_flag::<usize>(&args, i, "--search-threads") {
                    Ok(n) => opts.search_threads = n,
                    Err(e) => return fail(e),
                }
                i += 2;
            }
            "--stats" => {
                show_stats = true;
                i += 1;
            }
            "--explain" => {
                show_plan = true;
                i += 1;
            }
            "--batch" => {
                batch = true;
                i += 1;
            }
            "--stream" => {
                stream = true;
                i += 1;
            }
            other => {
                if other.starts_with("--") && other != "--demo" {
                    return usage();
                }
                if source.is_none() && query_arg.is_none() && legacy_snapshot_out.is_none() {
                    source = Some(other);
                } else if query_arg.is_none() {
                    query_arg = Some(other);
                } else {
                    return usage();
                }
                i += 1;
            }
        }
    }

    if batch && stream {
        return fail("--stream streams a single query and cannot be combined with --batch");
    }

    let Some(source) = source else {
        return usage();
    };

    // Legacy `--snapshot` conversion mode.
    if let Some(out) = legacy_snapshot_out {
        let graph = match load_graph(source) {
            Ok(g) => g,
            Err(e) => return fail(e),
        };
        return match snapshot::save_to(&graph, out) {
            Ok(info) => {
                print!("wrote {out}: {info}");
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        };
    }

    let Some(query_arg) = query_arg else {
        return usage();
    };
    let query = if let Some(path) = query_arg.strip_prefix('@') {
        match std::fs::read_to_string(path) {
            Ok(q) => q,
            Err(e) => return fail(format!("cannot read query file {path}: {e}")),
        }
    } else {
        query_arg.to_string()
    };

    // One session for the whole invocation: every query (and every
    // batch member) shares the plan cache. `.csg` sources go through
    // `Session::open_snapshot`, so a statistics sidecar lands directly
    // in the planner.
    let session = if source != "--demo" && source.ends_with(".csg") {
        match Session::open_snapshot_with(source, opts) {
            Ok(s) => s,
            Err(e) => return fail(e),
        }
    } else {
        match load_graph(source) {
            Ok(g) => Session::from_graph_with(g, opts),
            Err(e) => return fail(e),
        }
    };
    let graph = session.graph();

    if batch {
        let queries = split_queries(&query);
        if queries.is_empty() {
            return fail("--batch input contains no queries");
        }
        let results = session.execute_batch(&queries);
        let mut failed = false;
        for (qi, (text, result)) in queries.iter().zip(&results).enumerate() {
            eprintln!("-- query {} of {} --", qi + 1, results.len());
            match result {
                Ok(r) => report(graph, r, show_plan, show_stats),
                Err(e) => {
                    eprintln!("query error: {e}\n  in: {}", text.trim());
                    failed = true;
                }
            }
        }
        if show_stats || show_plan {
            eprintln!(
                "session plan cache: {} hit(s), {} miss(es), {} cached plan(s)",
                session.plan_cache_hits(),
                session.plan_cache_misses(),
                session.plan_cache_len()
            );
        }
        if failed {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if stream {
        let prepared = match session.prepare(&query) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("query error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut result_stream = match session.execute_streaming(&prepared) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("query error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if show_plan {
            report_plans(result_stream.exec_stats());
        }
        println!("{}", result_stream.out_var());
        let mut n = 0usize;
        for tree in result_stream.by_ref() {
            println!("[{}]", tree.describe(graph));
            n += 1;
        }
        eprintln!("{n} tree(s) streamed");
        if show_stats {
            let s = result_stream.stats();
            eprintln!(
                "stream {:?} | {} provenances, {} grows, {} merges, {} pruned",
                result_stream.elapsed(),
                s.provenances,
                s.grows,
                s.merges,
                s.pruned
            );
        }
        return ExitCode::SUCCESS;
    }

    match session.run(&query) {
        Ok(result) => {
            report(graph, &result, show_plan, show_stats);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query error: {e}");
            ExitCode::FAILURE
        }
    }
}
