//! Keyword search in databases — the classic application the CTP
//! machinery generalises (paper §1, §6).
//!
//! Each "keyword" selects the set of nodes whose label matches it (a
//! predicate over N); the answers are the minimal trees connecting one
//! match of each keyword. Compares the all-results MoLESP evaluation
//! against the classic single-result group-Steiner answer (DPBF).
//!
//! Run with: `cargo run --example keyword_search`

use connection_search::core::baseline::dpbf;
use connection_search::core::{evaluate_ctp, Algorithm, Filters, QueueOrder, SeedSets, SeedSpec};
use connection_search::graph::generate::{yago_like, YagoLikeParams};
use connection_search::graph::{matching_nodes, Predicate};
use connection_search::Session;

fn main() {
    let g = yago_like(&YagoLikeParams {
        persons: 500,
        organisations: 40,
        places: 15,
        works: 60,
        seed: 2024,
    });
    println!(
        "knowledge graph: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );

    // Keywords: label globs over the graph.
    let keywords = ["person1?", "org3", "place2"];
    let mut specs = Vec::new();
    for kw in keywords {
        let matches = matching_nodes(&g, &Predicate::label_like(kw));
        println!("keyword {kw:>9}: {} matching nodes", matches.len());
        specs.push(SeedSpec::Set(matches));
    }
    let seeds = SeedSets::new(specs).expect("non-empty keyword matches");

    let out = evaluate_ctp(
        &g,
        &seeds,
        Algorithm::MoLesp,
        Filters::none()
            .with_max_edges(5)
            .with_max_results(2000)
            .with_timeout(std::time::Duration::from_secs(5)),
        QueueOrder::SmallestFirst,
    );
    println!(
        "\nMoLESP: {} connecting trees (≤ 5 edges) in {:?} \
         ({} provenances built)",
        out.results.len(),
        out.duration,
        out.stats.provenances
    );
    for t in out.results.trees().iter().take(3) {
        println!("  [{} edges] {}", t.size(), t.describe(&g));
    }

    // The same keyword search as an EQL query through the Session
    // streaming API: glob predicates select the keyword matches, and
    // the pull-based stream advances the search only as far as the
    // trees we consume — the analyst sees the first hits immediately,
    // TOP-k style, without bounding the result count up front.
    let session = Session::new(&g);
    let prepared = session
        .prepare(
            r#"SELECT w WHERE {
                 CONNECT(a : label ~ "person1?", b : label ~ "org3", c : label ~ "place2" -> w)
                 MAX 5
               }"#,
        )
        .expect("valid EQL");
    let mut stream = session
        .execute_streaming(&prepared)
        .expect("single-CTP SELECT streams");
    println!("\nEQL streaming (first 3 trees pulled, search then abandoned):");
    for t in stream.by_ref().take(3) {
        println!("  [{} edges] {}", t.size(), t.describe(&g));
    }
    println!(
        "  … after {} provenances in {:?} — the batch run above needed {}",
        stream.stats().provenances,
        stream.elapsed(),
        out.stats.provenances
    );

    // The group-Steiner baseline returns exactly one least-cost tree.
    match dpbf(&g, &seeds, false) {
        Some(st) => {
            println!(
                "\nDPBF (single optimal): {} edges, cost {}",
                st.edges.len(),
                st.cost
            );
            let min = out.results.trees().iter().map(|t| t.size()).min();
            println!(
                "smallest MoLESP result: {:?} edges — the all-results search \
                 contains the optimum and everything else the analyst may rank",
                min
            );
        }
        None => println!("\nDPBF: keywords not connected"),
    }
}
