//! Investigative-journalism scenario (the paper's motivating use case):
//! "find all connections between Mr. Shady, bank company ABC, and the
//! tax office of the DEF republic".
//!
//! Builds an offshore-leaks-style graph — persons, shell companies,
//! accounts, banks, jurisdictions — where the *small* connection goes
//! through a country hub (uninteresting) and a larger one goes through
//! a chain of accounts (the story). Scoring by specificity surfaces
//! the interesting tree first, exactly the paper's Introduction
//! argument for score-function orthogonality (R2).
//!
//! Run with: `cargo run --example investigation`

use connection_search::core::score::{EdgeCount, ScoreFn, Specificity};
use connection_search::core::{evaluate_ctp, Algorithm, Filters, QueueOrder, SeedSets};
use connection_search::graph::{Graph, GraphBuilder, NodeId};
use connection_search::Session;

fn build_case() -> (Graph, NodeId, NodeId, NodeId) {
    let mut b = GraphBuilder::new();

    let shady = b.add_typed_node("MrShady", &["person"]);
    let abc = b.add_typed_node("BankABC", &["bank"]);
    let tax_def = b.add_typed_node("TaxOfficeDEF", &["authority"]);
    let def = b.add_typed_node("DEF", &["country"]);
    let ghi = b.add_typed_node("GHI", &["country"]);

    // The boring connection: everyone relates to the DEF country hub.
    b.add_edge(shady, "citizenOf", def);
    b.add_edge(abc, "hasOfficeIn", def);
    b.add_edge(tax_def, "authorityOf", def);

    // Lots of unrelated entities also hang off the hub, making it
    // high-degree (low specificity).
    for i in 0..30 {
        let p = b.add_typed_node(&format!("citizen{i}"), &["person"]);
        b.add_edge(p, "citizenOf", def);
    }

    // The interesting connection: three ABC accounts route money from
    // a DEF shell company to Mr. Shady in GHI, and the tax office
    // audited the shell.
    let shell = b.add_typed_node("ShellCoDEF", &["company"]);
    let acct1 = b.add_typed_node("acct1", &["account"]);
    let acct2 = b.add_typed_node("acct2", &["account"]);
    let acct3 = b.add_typed_node("acct3", &["account"]);
    b.add_edge(shell, "holds", acct1);
    b.add_edge(acct1, "transfersTo", acct2);
    b.add_edge(acct2, "transfersTo", acct3);
    // Note the direction: the account *belongs to* Mr. Shady — the
    // search must traverse it backwards (requirement R3).
    b.add_edge(acct3, "belongsTo", shady);
    b.add_edge(abc, "operates", acct2);
    b.add_edge(tax_def, "audited", shell);
    b.add_edge(shady, "residesIn", ghi);

    (b.freeze(), shady, abc, tax_def)
}

fn main() {
    let (g, shady, abc, tax) = build_case();
    println!(
        "case graph: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );

    let seeds = SeedSets::from_sets(vec![vec![shady], vec![abc], vec![tax]]).unwrap();
    let out = evaluate_ctp(
        &g,
        &seeds,
        Algorithm::MoLesp,
        Filters::none().with_max_edges(8),
        QueueOrder::SmallestFirst,
    );
    println!(
        "\nCONNECT(MrShady, BankABC, TaxOfficeDEF): {} connecting trees (≤ 8 edges)",
        out.results.len()
    );

    for (name, sigma) in [
        ("edgecount (smallest first)", &EdgeCount as &dyn ScoreFn),
        ("specificity (hub-avoiding)", &Specificity as &dyn ScoreFn),
    ] {
        let ranked = connection_search::core::score::rank_all(&g, out.results.trees(), sigma);
        println!("\n-- ranked by {name} --");
        for (score, tree) in ranked.iter().take(2) {
            println!("  score {score:>6.3}:  {}", tree.describe(&g));
        }
    }

    println!(
        "\nThe country-hub tree wins on size, but the account-chain tree wins \
         on specificity — the score function is the analyst's choice (R2)."
    );

    // The same investigation in EQL, through a prepared query: the
    // analyst typically re-runs the case query as the graph view
    // evolves, so parse + validate + plan happen once on the session.
    let session = Session::new(&g);
    let prepared = session
        .prepare(
            r#"SELECT w WHERE {
                 CONNECT("MrShady", "BankABC", "TaxOfficeDEF" -> w)
                 MAX 8 SCORE specificity TOP 2
               }"#,
        )
        .expect("valid EQL");
    let eql_result = session.execute(&prepared).expect("case query executes");
    println!(
        "\nEQL (prepared, specificity TOP 2): {} answers",
        eql_result.rows()
    );
    for (score, tree) in eql_result.scores["w"]
        .iter()
        .zip(eql_result.trees["w"].iter())
    {
        println!("  score {score:>6.3}:  {}", tree.describe(&g));
    }

    // Export the evidence subgraph: the union of all found connecting
    // trees, as shareable triples.
    let all_edges: Vec<_> = out
        .results
        .trees()
        .iter()
        .flat_map(|t| t.edges.iter().copied())
        .collect();
    let (evidence, _) = connection_search::graph::extract_subgraph(&g, &all_edges, &[]);
    println!(
        "\nevidence subgraph: {} nodes, {} edges — exported triples:\n{}",
        evidence.node_count(),
        evidence.edge_count(),
        connection_search::graph::ntriples::write_triples(&evidence)
    );
}
