//! Quickstart: the paper's running example, through the Session API.
//!
//! Builds the Figure 1 graph, opens a [`Session`], and runs query Q1 —
//! "what are the connections between some American entrepreneur x,
//! some French entrepreneur y, and some French politician z?" — then
//! re-runs the same prepared query ranked by specificity. The second
//! execution reuses the plans the first one cached.
//!
//! Run with: `cargo run --example quickstart`

use connection_search::graph::figure1;
use connection_search::Session;

fn main() {
    let g = figure1();
    println!(
        "Figure 1 graph: {} nodes, {} edges\n",
        g.node_count(),
        g.edge_count()
    );

    let session = Session::new(&g);

    let q1 = r#"
        SELECT x, y, z, w WHERE {
            (x : type = "entrepreneur", "citizenOf", "USA")
            (y : type = "entrepreneur", "citizenOf", "France")
            (z : type = "politician",  "citizenOf", "France")
            CONNECT(x, y, z -> w)
        }
    "#;
    println!("Q1:{q1}");

    // Parse + validate + component-group once; execute as often as
    // needed.
    let prepared = session.prepare(q1).expect("Q1 is valid EQL");
    let result = session.execute(&prepared).expect("Q1 executes");
    println!("{} answers:\n", result.rows());
    print!("{}", result.render(&g));

    // The same CTP, now ranked by specificity (hub-avoiding) and
    // limited to the top answer — requirement R2: any score function.
    // Its three BGP components have the same shape as Q1's, so all
    // three plans come from the session's cache.
    let ranked = session
        .run(
            r#"
        SELECT x, y, z, w WHERE {
            (x : type = "entrepreneur", "citizenOf", "USA")
            (y : type = "entrepreneur", "citizenOf", "France")
            (z : type = "politician",  "citizenOf", "France")
            CONNECT(x, y, z -> w) SCORE specificity TOP 1
        }
    "#,
        )
        .expect("valid EQL");
    println!("\nTop answer by specificity:");
    print!("{}", ranked.render(&g));
    println!(
        "\nplan cache: {} hit(s), {} miss(es) this query — \
         structurally identical BGPs reuse plans across the session",
        ranked.stats.plan_cache_hits, ranked.stats.plan_cache_misses
    );
}
