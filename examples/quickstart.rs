//! Quickstart: the paper's running example.
//!
//! Builds the Figure 1 graph and runs query Q1 — "what are the
//! connections between some American entrepreneur x, some French
//! entrepreneur y, and some French politician z?" — then prints every
//! answer with its connecting tree.
//!
//! Run with: `cargo run --example quickstart`

use connection_search::eql::run_query;
use connection_search::graph::figure1;

fn main() {
    let g = figure1();
    println!(
        "Figure 1 graph: {} nodes, {} edges\n",
        g.node_count(),
        g.edge_count()
    );

    let q1 = r#"
        SELECT x, y, z, w WHERE {
            (x : type = "entrepreneur", "citizenOf", "USA")
            (y : type = "entrepreneur", "citizenOf", "France")
            (z : type = "politician",  "citizenOf", "France")
            CONNECT(x, y, z -> w)
        }
    "#;
    println!("Q1:{q1}");

    let result = run_query(&g, q1).expect("Q1 is valid EQL");
    println!("{} answers:\n", result.rows());
    print!("{}", result.render(&g));

    // The same CTP, now ranked by specificity (hub-avoiding) and
    // limited to the top answer — requirement R2: any score function.
    let ranked = run_query(
        &g,
        r#"
        SELECT x, y, z, w WHERE {
            (x : type = "entrepreneur", "citizenOf", "USA")
            (y : type = "entrepreneur", "citizenOf", "France")
            (z : type = "politician",  "citizenOf", "France")
            CONNECT(x, y, z -> w) SCORE specificity TOP 1
        }
    "#,
    )
    .expect("valid EQL");
    println!("\nTop answer by specificity:");
    print!("{}", ranked.render(&g));
}
