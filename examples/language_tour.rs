//! A tour of the EQL surface language: predicates, constants, CTP
//! filters, scoring, algorithm selection, and N seed sets — each query
//! parsed, executed on the Figure 1 graph, and printed.
//!
//! Run with: `cargo run --example language_tour`

use connection_search::eql::parse;
use connection_search::graph::figure1;
use connection_search::Session;

fn main() {
    let g = figure1();
    // One session for the whole tour: structurally similar queries
    // reuse cached BGP plans.
    let session = Session::new(&g);
    let queries: &[(&str, &str)] = &[
        (
            "plain BGP — who founded what?",
            r#"SELECT x, y WHERE { (x, "founded", y) }"#,
        ),
        (
            "predicate conjunction and glob matching (Def. 2.2)",
            r#"SELECT x WHERE { (x : label ~ "*lice" AND type = "entrepreneur", "citizenOf", y) }"#,
        ),
        (
            "path CTP (m = 2) with MAX",
            r#"SELECT w WHERE { CONNECT("Bob", "Alice" -> w) MAX 4 }"#,
        ),
        (
            "label-constrained connection",
            r#"SELECT w WHERE { CONNECT("Bob", "Carole" -> w) LABEL "citizenOf" MAX 2 }"#,
        ),
        (
            "unidirectional trees only (UNI)",
            r#"SELECT w WHERE { CONNECT("Carole", "USA" -> w) UNI MAX 2 }"#,
        ),
        (
            "scored and truncated (SCORE … TOP k)",
            r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 5 SCORE labelrarity TOP 2 }"#,
        ),
        (
            "explicit algorithm choice per CTP",
            r#"SELECT w WHERE { CONNECT("OrgA", "OrgC" -> w) MAX 3 ALGORITHM gam }"#,
        ),
        (
            "an N seed set: everything within 1 hop of Falcon (§4.9)",
            r#"SELECT w WHERE { CONNECT("Falcon", anything -> w) MAX 1 }"#,
        ),
        (
            "BGP ⋈ CTP: connections between BGP-bound bindings",
            r#"SELECT x, y, w WHERE {
                 (x, "founded", "OrgC")
                 (y, "affiliation", "\"National Liberal Party\"")
                 CONNECT(x, y -> w) MAX 4 LIMIT 3
               }"#,
        ),
    ];

    // ASK: the boolean, check-only form.
    for (title, q) in [
        (
            "ASK — is Bob connected to Elon at all?",
            r#"ASK WHERE { CONNECT("Bob", "Elon" -> w) }"#,
        ),
        (
            "ASK with an impossible constraint",
            r#"ASK WHERE { CONNECT("Bob", "Elon" -> w) LABEL "funds" }"#,
        ),
    ] {
        let answer = session.ask(q).expect("valid ASK");
        println!(
            "### {title}
{q}
=> {answer}
"
        );
    }

    for (title, q) in queries {
        println!("### {title}\n{q}\n");
        let ast = parse(q).expect("example queries are valid");
        println!(
            "parsed: {} edge pattern(s), {} CTP(s)",
            ast.patterns.len(),
            ast.ctps.len()
        );
        match session.run(q) {
            Ok(res) => {
                println!("{} row(s):", res.rows());
                print!("{}", res.render(&g));
                for (var, stats, dur) in &res.stats.ctp_stats {
                    println!(
                        "  [CTP {var}: {} provenances, {} grows, {} merges, {:?}]",
                        stats.provenances, stats.grows, stats.merges, dur
                    );
                }
            }
            Err(e) => println!("error: {e}"),
        }
        println!();
    }
}
