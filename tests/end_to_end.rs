//! Cross-crate integration tests: graph generation → EQL parsing →
//! BGP evaluation → CTP search → joins, end to end.

use connection_search::core::{evaluate_ctp, Algorithm, Filters, QueueOrder, SeedSets};
use connection_search::eql::ExecOptions;
use connection_search::graph::figure1;
use connection_search::graph::generate::{cdf, CdfParams};
use connection_search::Session;

#[test]
fn q1_full_pipeline_on_figure1() {
    let g = figure1();
    let r = Session::new(&g)
        .run(
            r#"
        SELECT x, y, z, w WHERE {
            (x : type = "entrepreneur", "citizenOf", "USA")
            (y : type = "entrepreneur", "citizenOf", "France")
            (z : type = "politician",  "citizenOf", "France")
            CONNECT(x, y, z -> w)
        }
    "#,
        )
        .unwrap();
    assert!(r.rows() >= 2, "Q1 has at least t_alpha and t_beta");
    // Every returned tree references only graph edges and is rendered.
    let rendered = r.render(&g);
    assert!(rendered.lines().count() == r.rows() + 1);
}

#[test]
fn cdf_m2_query_finds_every_link() {
    let p = CdfParams {
        m: 2,
        n_t: 6,
        n_l: 12,
        s_l: 3,
        seed: 42,
    };
    let built = cdf(&p);
    let q = r#"
        SELECT tl, bl, l WHERE {
            (x, "c", tl)
            (v, "g", bl)
            CONNECT(bl, tl -> l)
        }
    "#;
    let r = Session::new(&built.graph).run(q).unwrap();
    // One answer per link (links are distinct (tl, bl, path) triples;
    // several links may share endpoints, deduplicating trees keeps
    // them distinct because the intermediate nodes differ).
    assert_eq!(r.rows(), p.n_l, "one answer per CDF link");
}

#[test]
fn cdf_m3_query_finds_every_y_link() {
    let p = CdfParams {
        m: 3,
        n_t: 4,
        n_l: 8,
        s_l: 3,
        seed: 43,
    };
    let built = cdf(&p);
    let q = r#"
        SELECT tl, bl1, bl2, l WHERE {
            (x, "c", tl)
            (v, "g", bl1)
            (v, "h", bl2)
            CONNECT(tl, bl1, bl2 -> l)
        }
    "#;
    let r = Session::new(&built.graph).run(q).unwrap();
    // Every ground-truth Y link must be recovered…
    let (ctl, cb1, cb2) = (
        r.table.col("tl").unwrap(),
        r.table.col("bl1").unwrap(),
        r.table.col("bl2").unwrap(),
    );
    let bound: Vec<(_, _, _)> = r
        .table
        .rows()
        .map(|row| {
            (
                row[ctl].as_node().unwrap(),
                row[cb1].as_node().unwrap(),
                row[cb2].as_node().unwrap(),
            )
        })
        .collect();
    for link in &built.links {
        assert!(
            bound.contains(&(link[0], link[1], link[2])),
            "link {link:?} not recovered"
        );
    }
    // …and the bidirectional search also finds additional minimal
    // trees (e.g. sibling leaves connected through their parent plus a
    // link) — the paper observes the same "more results than N_L"
    // effect for bidirectional MoLESP (§5.5.1).
    assert!(r.rows() >= p.n_l);
}

#[test]
fn eql_ctp_matches_direct_api() {
    // A CTP-only query must return exactly what the direct core API
    // computes on the same seed sets.
    let g = figure1();
    let r = Session::new(&g)
        .run(r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 4 }"#)
        .unwrap();

    let bob = g.node_by_label("Bob").unwrap();
    let elon = g.node_by_label("Elon").unwrap();
    let seeds = SeedSets::from_sets(vec![vec![bob], vec![elon]]).unwrap();
    let direct = evaluate_ctp(
        &g,
        &seeds,
        Algorithm::MoLesp,
        Filters::none().with_max_edges(4),
        QueueOrder::SmallestFirst,
    );
    assert_eq!(r.trees["w"].len(), direct.results.len());
    let mut a: Vec<_> = r.trees["w"].iter().map(|t| t.edges.to_vec()).collect();
    let mut b = direct.results.canonical();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn algorithms_agree_through_eql() {
    let g = figure1();
    let mut canon = Vec::new();
    for algo in ["gam", "molesp", "bft"] {
        let q = format!(
            r#"SELECT w WHERE {{ CONNECT("Alice", "Carole" -> w) MAX 4 ALGORITHM {algo} }}"#
        );
        let r = Session::new(&g).run(&q).unwrap();
        let mut c: Vec<_> = r.trees["w"].iter().map(|t| t.edges.to_vec()).collect();
        c.sort();
        canon.push(c);
    }
    assert_eq!(canon[0], canon[1]);
    assert_eq!(canon[1], canon[2]);
}

#[test]
fn default_timeout_option_respected() {
    let g = figure1();
    let opts = ExecOptions {
        default_timeout: Some(std::time::Duration::from_millis(1)),
        ..ExecOptions::default()
    };
    // Even with a microscopic default timeout the query returns (with
    // possibly partial CTP results) rather than hanging.
    let r = Session::with_options(&g, opts)
        .run(r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) }"#)
        .unwrap();
    let _ = r.rows();
}

#[test]
fn scores_surface_in_result() {
    let g = figure1();
    let r = Session::new(&g)
        .run(r#"SELECT w WHERE { CONNECT("Bob", "Alice" -> w) SCORE specificity TOP 3 }"#)
        .unwrap();
    let scores = &r.scores["w"];
    assert!(!scores.is_empty() && scores.len() <= 3);
    assert!(scores.windows(2).all(|w| w[0] >= w[1]));
}

#[test]
fn triple_roundtrip_preserves_query_results() {
    use connection_search::graph::ntriples::{parse_triples, write_triples};
    let g = figure1();
    let g2 = parse_triples(&write_triples(&g)).unwrap();
    let q = r#"SELECT w WHERE { CONNECT("Bob", "Carole" -> w) MAX 3 }"#;
    let a = Session::new(&g).run(q).unwrap();
    let b = Session::new(&g2).run(q).unwrap();
    assert_eq!(a.rows(), b.rows());
}
