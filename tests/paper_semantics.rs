//! Tests pinning the paper's *semantic* claims from Section 2:
//! minimality, the difference from path-based semantics, edge-direction
//! blindness (R3), and the exponential chain of Figure 2.

use connection_search::core::baseline::{enumerate_paths, stitch, PathOptions};
use connection_search::core::{evaluate_ctp, Algorithm, Filters, QueueOrder, SeedSets};
use connection_search::graph::generate::chain;
use connection_search::graph::{figure1, GraphBuilder, NodeId};

fn molesp(
    g: &connection_search::graph::Graph,
    seeds: Vec<Vec<NodeId>>,
) -> connection_search::core::SearchOutcome {
    let s = SeedSets::from_sets(seeds).unwrap();
    evaluate_ctp(
        g,
        &s,
        Algorithm::MoLesp,
        Filters::none(),
        QueueOrder::SmallestFirst,
    )
}

#[test]
fn figure2_chain_has_2_to_the_n_results() {
    for n in [1usize, 3, 6, 9] {
        let w = chain(n);
        let out = molesp(&w.graph, w.seeds.clone());
        assert_eq!(
            out.results.len(),
            1 << n,
            "chain({n}) must have 2^{n} results"
        );
    }
}

#[test]
fn minimality_excludes_paths_through_same_set_seeds() {
    // Paper §2: "a path going from s1 ∈ S1 through s'1 ∈ S1 to s2 ∈ S2
    // cannot appear in g'(S1, S2)".
    // Graph: s1 - s1' - s2 in a line, with s1, s1' both in S1.
    let mut b = GraphBuilder::new();
    let s1 = b.add_node("s1");
    let s1p = b.add_node("s1p");
    let s2 = b.add_node("s2");
    b.add_edge(s1, "r", s1p);
    b.add_edge(s1p, "r", s2);
    let g = b.freeze();

    let out = molesp(&g, vec![vec![s1, s1p], vec![s2]]);
    // Only the direct connection s1' - s2 qualifies; the 2-edge path
    // contains two S1 nodes.
    assert_eq!(out.results.len(), 1);
    assert_eq!(out.results.trees()[0].size(), 1);

    // Path enumeration (the path-based semantics) happily returns the
    // 2-edge path from s1 — demonstrating the semantic difference.
    let paths = enumerate_paths(&g, s1, s2, &PathOptions::undirected(4));
    assert!(paths.iter().any(|p| p.len() == 2));
}

#[test]
fn bidirectional_by_default_r3() {
    // t_beta of the running example needs edges traversed against
    // their direction: Bob -founded-> OrgB <-investsIn- Alice ….
    let g = figure1();
    let bob = g.node_by_label("Bob").unwrap();
    let alice = g.node_by_label("Alice").unwrap();
    let out = molesp(&g, vec![vec![bob], vec![alice]]);
    // Bob and Alice connect through OrgB in 2 edges despite opposing
    // edge directions.
    assert!(out.results.trees().iter().any(|t| t.size() == 2));

    // Under UNI the OrgB connection disappears (no dominating root).
    let s = SeedSets::from_sets(vec![vec![bob], vec![alice]]).unwrap();
    let uni = evaluate_ctp(
        &g,
        &s,
        Algorithm::MoLesp,
        Filters::none().uni().with_max_edges(2),
        QueueOrder::SmallestFirst,
    );
    assert!(uni.results.trees().iter().all(|t| t.size() != 2));
}

#[test]
fn stitching_produces_duplicates_the_ctp_semantics_avoid() {
    // Paper §2: for each n-node tree in the result, the three-way join
    // of root-to-seed paths produces n duplicate combinations.
    let mut b = GraphBuilder::new();
    let a = b.add_node("A");
    let x = b.add_node("x");
    let y = b.add_node("y");
    let c = b.add_node("C");
    let d = b.add_node("D");
    b.add_edge(a, "r", x);
    b.add_edge(x, "r", y);
    b.add_edge(y, "r", c);
    b.add_edge(x, "r", d);
    let g = b.freeze();
    let seeds_vec = vec![vec![a], vec![c], vec![d]];

    let direct = molesp(&g, seeds_vec.clone());
    assert_eq!(direct.results.len(), 1, "exactly one connecting tree");

    let s = SeedSets::from_sets(seeds_vec).unwrap();
    let st = stitch(&g, &s, &PathOptions::undirected(5));
    assert_eq!(st.deduped.len(), 1, "stitching finds the same tree…");
    assert!(
        st.raw_combinations > 1,
        "…but through {} raw join combinations (deduplication required)",
        st.raw_combinations
    );
}

#[test]
fn every_leaf_is_a_seed_observation1() {
    let g = figure1();
    let carole = g.node_by_label("Carole").unwrap();
    let elon = g.node_by_label("Elon").unwrap();
    let doug = g.node_by_label("Doug").unwrap();
    let out = molesp(&g, vec![vec![carole], vec![elon], vec![doug]]);
    assert!(!out.results.is_empty());
    let seeds = [carole, elon, doug];
    for t in out.results.trees() {
        use std::collections::HashMap;
        let mut deg: HashMap<NodeId, usize> = HashMap::new();
        for &e in t.edges.iter() {
            let ed = g.edge(e);
            *deg.entry(ed.src).or_default() += 1;
            *deg.entry(ed.dst).or_default() += 1;
        }
        for (n, d) in deg {
            if d == 1 {
                assert!(seeds.contains(&n), "leaf {n:?} is not a seed");
            }
        }
    }
}

#[test]
fn results_are_edge_sets_not_rooted_trees() {
    // §4.4: the root is meaningless in a CTP result — no two results
    // share an edge set.
    let w = chain(5);
    let out = molesp(&w.graph, w.seeds.clone());
    let mut canon = out.results.canonical();
    let before = canon.len();
    canon.dedup();
    assert_eq!(canon.len(), before);
}
