//! Integration tests of the `csq` binary: exit codes must reflect
//! parse/execution failures (single-query and batch), and `--batch`
//! must execute `;`-separated queries through one session.

use std::process::{Command, Output};

fn csq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_csq"))
        .args(args)
        .output()
        .expect("csq runs")
}

#[test]
fn ok_query_exits_zero() {
    let out = csq(&["--demo", r#"SELECT x WHERE { (x, "founded", y) }"#]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Bob"), "{stdout}");
}

#[test]
fn parse_error_exits_nonzero() {
    let out = csq(&["--demo", "SELECT nonsense ("]);
    assert!(!out.status.success(), "parse errors must fail the process");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query error"), "{stderr}");
}

#[test]
fn execution_error_exits_nonzero() {
    // Valid syntax, but the CTP seed set is empty (no such label), so
    // execution fails with a seed error.
    let out = csq(&[
        "--demo",
        r#"SELECT w WHERE { CONNECT("NoSuchNode", "Bob" -> w) }"#,
    ]);
    assert!(
        !out.status.success(),
        "execution errors must fail the process"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query error"), "{stderr}");
}

#[test]
fn batch_executes_all_queries() {
    let out = csq(&[
        "--demo",
        r#"SELECT x WHERE { (x, "founded", y) } ;
           SELECT w WHERE { CONNECT("Bob", "Carole" -> w) MAX 3 }"#,
        "--batch",
        "--explain",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query 1 of 2"), "{stderr}");
    assert!(stderr.contains("query 2 of 2"), "{stderr}");
    assert!(stderr.contains("plan cache"), "{stderr}");
}

#[test]
fn batch_with_failing_member_exits_nonzero() {
    let out = csq(&[
        "--demo",
        r#"SELECT x WHERE { (x, "founded", y) } ; SELECT broken ("#,
        "--batch",
    ]);
    assert!(
        !out.status.success(),
        "a failing batch member must fail the process"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query error"), "{stderr}");
}

#[test]
fn batch_separator_ignores_semicolons_in_strings() {
    // The ";" inside the quoted label must not split the query.
    let out = csq(&[
        "--demo",
        r#"SELECT w WHERE { CONNECT("no;such;node", "Bob" -> w) }"#,
        "--batch",
    ]);
    // One query, which fails on the empty seed set — but as ONE query.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query 1 of 1"), "{stderr}");
    assert!(!out.status.success());
}

const DEMO_CTP: &str = r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 4 }"#;

#[test]
fn numeric_flags_reject_garbage_with_one_line_error() {
    for flag in ["--threads", "--search-threads", "--timeout"] {
        let out = csq(&["--demo", DEMO_CTP, flag, "abc"]);
        assert!(!out.status.success(), "{flag} abc must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag) && stderr.contains("expects a number"),
            "{flag}: unclear error: {stderr}"
        );
        assert!(
            !stderr.contains("usage:"),
            "{flag}: a bad value is an error, not a usage dump: {stderr}"
        );
    }
}

#[test]
fn numeric_flags_reject_missing_value() {
    for flag in ["--threads", "--search-threads", "--timeout"] {
        let out = csq(&["--demo", DEMO_CTP, flag]);
        assert!(!out.status.success(), "bare {flag} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag) && stderr.contains("none was given"),
            "{flag}: unclear error: {stderr}"
        );
    }
}

#[test]
fn usage_lists_every_flag() {
    // No query at all → usage. Every parsed flag must appear there, so
    // the usage string cannot drift from the flag list.
    let out = csq(&["--demo"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    for flag in [
        "--algorithm",
        "--timeout",
        "--threads",
        "--search-threads",
        "--stats",
        "--explain",
        "--batch",
        "--snapshot",
    ] {
        assert!(stderr.contains(flag), "usage misses {flag}: {stderr}");
    }
}

#[test]
fn search_threads_runs_partitioned_with_worker_stats() {
    let out = csq(&["--demo", DEMO_CTP, "--search-threads", "2", "--stats"]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("worker 0:"), "{stderr}");
    assert!(stderr.contains("worker 1:"), "{stderr}");
    assert!(stderr.contains("stolen"), "{stderr}");
}

#[test]
fn search_threads_do_not_change_output() {
    let seq = csq(&["--demo", DEMO_CTP]);
    let par = csq(&["--demo", DEMO_CTP, "--search-threads", "4"]);
    assert!(seq.status.success() && par.status.success());
    assert_eq!(
        String::from_utf8_lossy(&seq.stdout),
        String::from_utf8_lossy(&par.stdout),
        "materialised output must be identical under --search-threads"
    );
}
