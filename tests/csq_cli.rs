//! Integration tests of the `csq` binary: exit codes must reflect
//! parse/execution failures (single-query and batch), and `--batch`
//! must execute `;`-separated queries through one session.

use std::process::{Command, Output};

fn csq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_csq"))
        .args(args)
        .output()
        .expect("csq runs")
}

#[test]
fn ok_query_exits_zero() {
    let out = csq(&["--demo", r#"SELECT x WHERE { (x, "founded", y) }"#]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Bob"), "{stdout}");
}

#[test]
fn parse_error_exits_nonzero() {
    let out = csq(&["--demo", "SELECT nonsense ("]);
    assert!(!out.status.success(), "parse errors must fail the process");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query error"), "{stderr}");
}

#[test]
fn execution_error_exits_nonzero() {
    // Valid syntax, but the CTP seed set is empty (no such label), so
    // execution fails with a seed error.
    let out = csq(&[
        "--demo",
        r#"SELECT w WHERE { CONNECT("NoSuchNode", "Bob" -> w) }"#,
    ]);
    assert!(
        !out.status.success(),
        "execution errors must fail the process"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query error"), "{stderr}");
}

#[test]
fn batch_executes_all_queries() {
    let out = csq(&[
        "--demo",
        r#"SELECT x WHERE { (x, "founded", y) } ;
           SELECT w WHERE { CONNECT("Bob", "Carole" -> w) MAX 3 }"#,
        "--batch",
        "--explain",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query 1 of 2"), "{stderr}");
    assert!(stderr.contains("query 2 of 2"), "{stderr}");
    assert!(stderr.contains("plan cache"), "{stderr}");
}

#[test]
fn batch_with_failing_member_exits_nonzero() {
    let out = csq(&[
        "--demo",
        r#"SELECT x WHERE { (x, "founded", y) } ; SELECT broken ("#,
        "--batch",
    ]);
    assert!(
        !out.status.success(),
        "a failing batch member must fail the process"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query error"), "{stderr}");
}

#[test]
fn batch_separator_ignores_semicolons_in_strings() {
    // The ";" inside the quoted label must not split the query.
    let out = csq(&[
        "--demo",
        r#"SELECT w WHERE { CONNECT("no;such;node", "Bob" -> w) }"#,
        "--batch",
    ]);
    // One query, which fails on the empty seed set — but as ONE query.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query 1 of 1"), "{stderr}");
    assert!(!out.status.success());
}
