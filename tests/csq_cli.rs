//! Integration tests of the `csq` binary: exit codes must reflect
//! parse/execution failures (single-query and batch), `--batch` must
//! execute `;`-separated queries through one session, and the dataset
//! workflow (`snapshot save` / `snapshot inspect` / `--graph`) must
//! round-trip — with one-line errors (never panics) on missing,
//! corrupt, or unwritable paths.

use std::process::{Command, Output};

fn csq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_csq"))
        .args(args)
        .output()
        .expect("csq runs")
}

/// A per-test temp path that is cleaned up on drop.
struct TmpFile(std::path::PathBuf);

impl TmpFile {
    fn new(name: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("csq-cli-test-{}-{name}", std::process::id()));
        TmpFile(p)
    }

    fn as_str(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TmpFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

#[test]
fn ok_query_exits_zero() {
    let out = csq(&["--demo", r#"SELECT x WHERE { (x, "founded", y) }"#]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Bob"), "{stdout}");
}

#[test]
fn parse_error_exits_nonzero() {
    let out = csq(&["--demo", "SELECT nonsense ("]);
    assert!(!out.status.success(), "parse errors must fail the process");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query error"), "{stderr}");
}

#[test]
fn execution_error_exits_nonzero() {
    // Valid syntax, but the CTP seed set is empty (no such label), so
    // execution fails with a seed error.
    let out = csq(&[
        "--demo",
        r#"SELECT w WHERE { CONNECT("NoSuchNode", "Bob" -> w) }"#,
    ]);
    assert!(
        !out.status.success(),
        "execution errors must fail the process"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query error"), "{stderr}");
}

#[test]
fn batch_executes_all_queries() {
    let out = csq(&[
        "--demo",
        r#"SELECT x WHERE { (x, "founded", y) } ;
           SELECT w WHERE { CONNECT("Bob", "Carole" -> w) MAX 3 }"#,
        "--batch",
        "--explain",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query 1 of 2"), "{stderr}");
    assert!(stderr.contains("query 2 of 2"), "{stderr}");
    assert!(stderr.contains("plan cache"), "{stderr}");
}

#[test]
fn batch_with_failing_member_exits_nonzero() {
    let out = csq(&[
        "--demo",
        r#"SELECT x WHERE { (x, "founded", y) } ; SELECT broken ("#,
        "--batch",
    ]);
    assert!(
        !out.status.success(),
        "a failing batch member must fail the process"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query error"), "{stderr}");
}

#[test]
fn batch_separator_ignores_semicolons_in_strings() {
    // The ";" inside the quoted label must not split the query.
    let out = csq(&[
        "--demo",
        r#"SELECT w WHERE { CONNECT("no;such;node", "Bob" -> w) }"#,
        "--batch",
    ]);
    // One query, which fails on the empty seed set — but as ONE query.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query 1 of 1"), "{stderr}");
    assert!(!out.status.success());
}

const DEMO_CTP: &str = r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 4 }"#;

#[test]
fn numeric_flags_reject_garbage_with_one_line_error() {
    for flag in ["--threads", "--search-threads", "--timeout", "--timeout-ms"] {
        let out = csq(&["--demo", DEMO_CTP, flag, "abc"]);
        assert!(!out.status.success(), "{flag} abc must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag) && stderr.contains("expects a number"),
            "{flag}: unclear error: {stderr}"
        );
        assert!(
            !stderr.contains("usage:"),
            "{flag}: a bad value is an error, not a usage dump: {stderr}"
        );
    }
}

#[test]
fn numeric_flags_reject_missing_value() {
    for flag in ["--threads", "--search-threads", "--timeout", "--timeout-ms"] {
        let out = csq(&["--demo", DEMO_CTP, flag]);
        assert!(!out.status.success(), "bare {flag} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag) && stderr.contains("none was given"),
            "{flag}: unclear error: {stderr}"
        );
    }
}

#[test]
fn usage_lists_every_flag() {
    // No query at all → usage. Every parsed flag must appear there, so
    // the usage string cannot drift from the flag list.
    let out = csq(&["--demo"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    for flag in [
        "--algorithm",
        "--timeout",
        "--timeout-ms",
        "--threads",
        "--search-threads",
        "--stats",
        "--explain",
        "--batch",
        "--stream",
        "--graph",
        "--snapshot",
        "snapshot save",
        "snapshot inspect",
        "connect",
        "bench-serve",
        "--tenant",
        "--cancel-after-ms",
        "--qps",
        "--duration-ms",
        "--connections",
    ] {
        assert!(stderr.contains(flag), "usage misses {flag}: {stderr}");
    }
}

// ---------------------------------------------------------------------------
// The hard per-query deadline (`--timeout-ms`): a typed DeadlineExceeded,
// reported as a one-line `error:` with a non-zero exit — unlike the soft
// per-CTP `--timeout`, which keeps the partial results found in time.

/// A search long enough that a 20 ms deadline trips mid-flight (the
/// `random64_molesp_max5` workload class).
const LONG_GRAPH: &str = "gen:random_connected:n=64,extra=192,seed=42";
const LONG_QUERY: &str = r#"SELECT w WHERE { CONNECT("n0", "n63" -> w) MAX 5 }"#;

#[test]
fn timeout_ms_reports_typed_deadline_exceeded() {
    let out = csq(&[LONG_GRAPH, LONG_QUERY, "--timeout-ms", "20"]);
    assert_one_line_error(&out, "--timeout-ms deadline");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.trim_end(), "error: deadline exceeded", "{stderr}");
}

#[test]
fn generous_timeout_ms_changes_nothing() {
    let plain = csq(&["--demo", DEMO_CTP]);
    let guarded = csq(&["--demo", DEMO_CTP, "--timeout-ms", "600000"]);
    assert!(plain.status.success() && guarded.status.success());
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&guarded.stdout),
        "an unreached deadline must not change output"
    );
}

#[test]
fn soft_timeout_still_keeps_partial_results() {
    // The soft per-CTP timeout truncates but succeeds — the contract
    // split the hard deadline must not regress.
    let out = csq(&[LONG_GRAPH, LONG_QUERY, "--timeout", "1", "--stats"]);
    assert!(
        out.status.success(),
        "soft timeout is not an error: {out:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("TIMED OUT"), "{stderr}");
}

// ---------------------------------------------------------------------------
// The dataset workflow: snapshot save / inspect / --graph / --stream.

const BGP_CTP: &str = r#"SELECT x, w WHERE { (x : type = "entrepreneur", "citizenOf", "USA") CONNECT(x, "France" -> w) MAX 3 }"#;

#[test]
fn snapshot_save_inspect_query_roundtrip() {
    let file = TmpFile::new("roundtrip.csg");

    let out = csq(&["snapshot", "save", "gen:figure1", file.as_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("12 nodes"), "{stdout}");
    assert!(stdout.contains("stats present"), "{stdout}");

    let out = csq(&["snapshot", "inspect", file.as_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CSG2 snapshot"), "{stdout}");
    assert!(stdout.contains("section 4 (stats)"), "{stdout}");

    // The file-backed query must print exactly what the in-memory demo
    // graph prints.
    let from_file = csq(&["--graph", file.as_str(), BGP_CTP]);
    let in_memory = csq(&["--demo", BGP_CTP]);
    assert!(from_file.status.success(), "{from_file:?}");
    assert_eq!(
        String::from_utf8_lossy(&from_file.stdout),
        String::from_utf8_lossy(&in_memory.stdout),
        "snapshot-backed output must equal in-memory output"
    );
}

#[test]
fn snapshot_save_without_stats() {
    let file = TmpFile::new("nostats.csg");
    let out = csq(&["snapshot", "save", "figure1", file.as_str(), "--no-stats"]);
    assert!(out.status.success(), "{out:?}");
    let out = csq(&["snapshot", "inspect", file.as_str()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stats absent"), "{stdout}");
}

#[test]
fn snapshot_save_from_triples_file() {
    let triples = TmpFile::new("in.triples");
    std::fs::write(&triples.0, "A\tknows\tB\nB\tknows\tC\nA\ta\tperson\n").unwrap();
    let file = TmpFile::new("fromtriples.csg");
    let out = csq(&["snapshot", "save", triples.as_str(), file.as_str()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 nodes"), "{stdout}");

    let out = csq(&[
        "--graph",
        file.as_str(),
        r#"SELECT x WHERE { (x, "knows", y) }"#,
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains('A'));
}

#[test]
fn stream_mode_prints_trees() {
    let out = csq(&[
        "--demo",
        r#"SELECT w WHERE { CONNECT("Bob", "Elon" -> w) MAX 4 }"#,
        "--stream",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("w\n"), "{stdout}");
    assert!(stdout.contains("Bob"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tree(s) streamed"), "{stderr}");
}

#[test]
fn stream_and_batch_conflict_is_one_line_error() {
    let out = csq(&["--demo", DEMO_CTP, "--stream", "--batch"]);
    assert_one_line_error(&out, "--stream with --batch");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--batch"), "{stderr}");
}

#[test]
fn stream_mode_rejects_multi_ctp_with_query_error() {
    let out = csq(&[
        "--demo",
        r#"SELECT v, w WHERE { CONNECT("Bob", "Elon" -> w) CONNECT("Alice", "Doug" -> v) }"#,
        "--stream",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query error"), "{stderr}");
}

// ---------------------------------------------------------------------------
// I/O failure modes: one-line error, non-zero exit, no panic/Debug dump.

fn assert_one_line_error(out: &Output, what: &str) {
    assert!(!out.status.success(), "{what}: must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error: "), "{what}: {stderr}");
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{what}: want one line, got: {stderr}"
    );
    for marker in ["panicked", "RUST_BACKTRACE", "Err("] {
        assert!(!stderr.contains(marker), "{what}: {stderr}");
    }
}

#[test]
fn missing_snapshot_is_one_line_error() {
    let out = csq(&["--graph", "/no/such/dir/missing.csg", BGP_CTP]);
    assert_one_line_error(&out, "missing --graph file");
    let out = csq(&["/no/such/dir/missing.csg", BGP_CTP]);
    assert_one_line_error(&out, "missing positional graph file");
    let out = csq(&["snapshot", "inspect", "/no/such/dir/missing.csg"]);
    assert_one_line_error(&out, "inspect of missing file");
}

#[test]
fn corrupt_snapshot_is_one_line_error() {
    let file = TmpFile::new("corrupt.csg");
    // A valid header with a flipped payload byte: framing parses, the
    // checksum must reject it.
    let good = TmpFile::new("good.csg");
    assert!(csq(&["snapshot", "save", "figure1", good.as_str()])
        .status
        .success());
    let mut bytes = std::fs::read(&good.0).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&file.0, &bytes).unwrap();

    let out = csq(&["--graph", file.as_str(), BGP_CTP]);
    assert_one_line_error(&out, "corrupt snapshot query");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checksum") || stderr.contains("truncated") || stderr.contains("snapshot"),
        "{stderr}"
    );
}

#[test]
fn unwritable_save_target_is_one_line_error() {
    let out = csq(&["snapshot", "save", "figure1", "/no/such/dir/out.csg"]);
    assert_one_line_error(&out, "unwritable save target");
    // Legacy conversion mode shares the error path.
    let out = csq(&["--demo", "--snapshot", "/no/such/dir/out.csg"]);
    assert_one_line_error(&out, "legacy --snapshot unwritable target");
}

#[test]
fn bad_gen_spec_is_one_line_error() {
    let out = csq(&["gen:nope:n=1", BGP_CTP]);
    assert_one_line_error(&out, "unknown generator family");
    let out = csq(&["snapshot", "save", "gen:chain:banana=1", "/tmp/x.csg"]);
    assert_one_line_error(&out, "unknown generator key");
}

#[test]
fn search_threads_runs_partitioned_with_worker_stats() {
    let out = csq(&["--demo", DEMO_CTP, "--search-threads", "2", "--stats"]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("worker 0:"), "{stderr}");
    assert!(stderr.contains("worker 1:"), "{stderr}");
    assert!(stderr.contains("stolen"), "{stderr}");
}

#[test]
fn search_threads_do_not_change_output() {
    let seq = csq(&["--demo", DEMO_CTP]);
    let par = csq(&["--demo", DEMO_CTP, "--search-threads", "4"]);
    assert!(seq.status.success() && par.status.success());
    assert_eq!(
        String::from_utf8_lossy(&seq.stdout),
        String::from_utf8_lossy(&par.stdout),
        "materialised output must be identical under --search-threads"
    );
}
